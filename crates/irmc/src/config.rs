//! Channel configuration.

use spider_crypto::{CostModel, KeyId};
use spider_types::SimTime;

/// Which IRMC implementation a channel uses (§4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Variant {
    /// IRMC-RC: every sender ships its signed `Send` to every receiver;
    /// receivers collect `fs + 1` matching copies (Fig 18).
    ReceiverCollect,
    /// IRMC-SC: senders exchange signature shares locally; a collector
    /// ships one `Certificate` per receiver (Figs 19–20).
    SenderCollect,
}

impl std::fmt::Display for Variant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Variant::ReceiverCollect => write!(f, "IRMC-RC"),
            Variant::SenderCollect => write!(f, "IRMC-SC"),
        }
    }
}

/// How a channel achieves BFT delivery, together with the variant's
/// performance lever — the single knob that replaces the old
/// `variant` + `sc_overlap` + dedup boolean sprawl.
///
/// Any plain [`Variant`] converts into its legacy-faithful mode
/// (`From<Variant>`), so call sites that only care about RC-vs-SC keep
/// passing a `Variant` to [`IrmcConfig::new`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum ChannelMode {
    /// IRMC-RC: receivers collect `fs + 1` matching submissions.
    ReliableCast {
        /// Digest-only fan-in: per range, one deterministically-rotated
        /// carrier ships content + signature while the other senders ship
        /// a MAC-authenticated `RangeVouch` (subchannel, first, count,
        /// Merkle root), so content crosses the wire and gets hashed at
        /// most once on the happy path. `false` is the legacy
        /// everyone-ships-content fan-in; single-slot sends and ranges of
        /// length 1 always use the legacy path.
        dedup: bool,
    },
    /// IRMC-SC: senders exchange signature shares locally; a collector
    /// ships one certificate per receiver.
    SenderCast {
        /// §A.9: ship range content to receivers before certification
        /// completes, overlapping the intra-region share exchange with
        /// WAN shipping. `false` ships content together with the
        /// certificate (ship-after-bundle).
        overlap: bool,
    },
}

impl ChannelMode {
    /// The underlying IRMC variant (for labels and dispatch).
    pub fn variant(&self) -> Variant {
        match self {
            ChannelMode::ReliableCast { .. } => Variant::ReceiverCollect,
            ChannelMode::SenderCast { .. } => Variant::SenderCollect,
        }
    }

    /// Whether the RC digest-only fan-in is active.
    pub fn dedup(&self) -> bool {
        matches!(self, ChannelMode::ReliableCast { dedup: true })
    }

    /// Whether the SC §A.9 content/share-exchange overlap is active.
    pub fn overlap(&self) -> bool {
        matches!(self, ChannelMode::SenderCast { overlap: true })
    }
}

impl From<Variant> for ChannelMode {
    /// Maps a bare variant to its legacy-faithful mode: RC without dedup,
    /// SC with the §A.9 overlap (the pre-`ChannelMode` defaults).
    fn from(v: Variant) -> Self {
        match v {
            Variant::ReceiverCollect => ChannelMode::ReliableCast { dedup: false },
            Variant::SenderCollect => ChannelMode::SenderCast { overlap: true },
        }
    }
}

impl std::fmt::Display for ChannelMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChannelMode::ReliableCast { dedup: false } => write!(f, "IRMC-RC"),
            ChannelMode::ReliableCast { dedup: true } => write!(f, "IRMC-RC-dedup"),
            ChannelMode::SenderCast { .. } => write!(f, "IRMC-SC"),
        }
    }
}

/// Static parameters of one IRMC.
#[derive(Debug, Clone)]
pub struct IrmcConfig {
    /// Delivery mode (variant + its performance lever).
    pub mode: ChannelMode,
    /// Number of sender endpoints.
    pub n_senders: usize,
    /// Byzantine senders to tolerate (`fs`): delivery needs `fs + 1`
    /// matching submissions.
    pub fs: usize,
    /// Number of receiver endpoints.
    pub n_receivers: usize,
    /// Byzantine receivers to tolerate (`fr`): sender windows follow the
    /// `fr + 1`-highest receiver request.
    pub fr: usize,
    /// Per-subchannel capacity (max positions concurrently in transit).
    pub capacity: u64,
    /// CPU cost model.
    pub cost: CostModel,
    /// IRMC-SC: how often senders announce certificate progress.
    pub progress_interval: SimTime,
    /// IRMC-SC: how long a receiver waits for a lagging collector before
    /// switching to another sender.
    pub collector_timeout: SimTime,
    /// IRMC-RC dedup: how long a receiver waits for a vouched range's
    /// content before (re)fetching copies from the vouchers. Unlike
    /// [`IrmcConfig::collector_timeout`], expiry is not a fault
    /// accusation — senders routinely cut ranges at diverged boundaries
    /// under replica-local back-pressure, and the refetch is how the
    /// receiver converges them — so this is RTT-scale, not
    /// suspicion-scale.
    pub refetch_delay: SimTime,
    /// Maximum slots per range certificate
    /// ([`crate::SenderEndpoint::send_batch`] chunks longer submissions).
    /// 1 disables range certification entirely (always the legacy
    /// per-slot wire messages).
    pub max_range: usize,
    /// Optional linger for [`crate::SenderEndpoint::send_buffered`]:
    /// contiguous single-slot sends accumulate into a pending range for at
    /// most this long (mirrors consensus `batch_delay`). Zero disables
    /// buffering — plain `send` never lingers either way.
    pub range_linger: SimTime,
    /// Signing identity of each sender endpoint. Defaults to
    /// `KeyId(1000 + i)`; deployments with multiple channels override this
    /// with the replicas' node identities via [`IrmcConfig::with_keys`].
    pub sender_keys: Vec<KeyId>,
    /// Signing identity of each receiver endpoint (default
    /// `KeyId(2000 + j)`).
    pub receiver_keys: Vec<KeyId>,
}

impl IrmcConfig {
    /// Creates a configuration with default cost model and SC timing.
    ///
    /// # Panics
    ///
    /// Panics unless `n_senders > fs`, `n_receivers > fr`, and
    /// `capacity >= 1`.
    pub fn new(
        mode: impl Into<ChannelMode>,
        n_senders: usize,
        fs: usize,
        n_receivers: usize,
        fr: usize,
        capacity: u64,
    ) -> Self {
        assert!(n_senders > fs, "need more senders than faults");
        assert!(n_receivers > fr, "need more receivers than faults");
        assert!(capacity >= 1, "capacity must be at least 1");
        IrmcConfig {
            mode: mode.into(),
            n_senders,
            fs,
            n_receivers,
            fr,
            capacity,
            cost: CostModel::default(),
            progress_interval: SimTime::from_millis(20),
            collector_timeout: SimTime::from_millis(500),
            refetch_delay: SimTime::from_millis(125),
            max_range: 32,
            range_linger: SimTime::ZERO,
            sender_keys: (0..n_senders).map(|i| KeyId(1000 + i as u32)).collect(),
            receiver_keys: (0..n_receivers).map(|j| KeyId(2000 + j as u32)).collect(),
        }
    }

    /// Replaces the endpoint identities (builder-style).
    ///
    /// # Panics
    ///
    /// Panics if the vectors do not match the configured group sizes.
    #[must_use]
    pub fn with_keys(mut self, sender_keys: Vec<KeyId>, receiver_keys: Vec<KeyId>) -> Self {
        assert_eq!(sender_keys.len(), self.n_senders);
        assert_eq!(receiver_keys.len(), self.n_receivers);
        self.sender_keys = sender_keys;
        self.receiver_keys = receiver_keys;
        self
    }

    /// Replaces the cost model (builder-style).
    #[must_use]
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Replaces the per-subchannel capacity (builder-style).
    #[must_use]
    pub fn with_capacity(mut self, capacity: u64) -> Self {
        assert!(capacity >= 1);
        self.capacity = capacity;
        self
    }

    /// Replaces the range-certification knobs (builder-style): maximum
    /// slots per range certificate and the single-send linger
    /// (see [`IrmcConfig::max_range`] / [`IrmcConfig::range_linger`]).
    ///
    /// # Panics
    ///
    /// Panics if `max_range` is zero.
    #[must_use]
    pub fn with_range(mut self, max_range: usize, range_linger: SimTime) -> Self {
        assert!(max_range >= 1, "max_range must be at least 1");
        self.max_range = max_range;
        self.range_linger = range_linger;
        self
    }

    /// Replaces the delivery mode (builder-style). Accepts a
    /// [`ChannelMode`] or a bare [`Variant`] (legacy-faithful mapping).
    #[must_use]
    pub fn with_mode(mut self, mode: impl Into<ChannelMode>) -> Self {
        self.mode = mode.into();
        self
    }

    /// The underlying IRMC variant (for labels and dispatch).
    pub fn variant(&self) -> Variant {
        self.mode.variant()
    }

    /// Whether the RC digest-only fan-in is active.
    pub fn dedup(&self) -> bool {
        self.mode.dedup()
    }

    /// Whether the SC §A.9 content/share-exchange overlap is active.
    pub fn sc_overlap(&self) -> bool {
        self.mode.overlap()
    }

    /// Enables or disables the §A.9 content/share-exchange overlap for
    /// IRMC-SC (builder-style).
    #[deprecated(note = "use `with_mode(ChannelMode::SenderCast { overlap })`")]
    #[must_use]
    pub fn with_sc_overlap(mut self, overlap: bool) -> Self {
        if let ChannelMode::SenderCast { .. } = self.mode {
            self.mode = ChannelMode::SenderCast { overlap };
        }
        self
    }

    /// Replaces the SC collector supervision timing (builder-style).
    #[must_use]
    pub fn with_sc_timing(
        mut self,
        progress_interval: SimTime,
        collector_timeout: SimTime,
    ) -> Self {
        self.progress_interval = progress_interval;
        self.collector_timeout = collector_timeout;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_config_builds() {
        let c = IrmcConfig::new(Variant::ReceiverCollect, 3, 1, 4, 1, 2);
        assert_eq!(c.n_senders, 3);
        assert_eq!(c.capacity, 2);
    }

    #[test]
    #[should_panic(expected = "more senders than faults")]
    fn too_few_senders_rejected() {
        let _ = IrmcConfig::new(Variant::ReceiverCollect, 1, 1, 3, 1, 2);
    }

    #[test]
    fn display_names_match_paper() {
        assert_eq!(Variant::ReceiverCollect.to_string(), "IRMC-RC");
        assert_eq!(Variant::SenderCollect.to_string(), "IRMC-SC");
        assert_eq!(ChannelMode::ReliableCast { dedup: true }.to_string(), "IRMC-RC-dedup");
        assert_eq!(ChannelMode::SenderCast { overlap: false }.to_string(), "IRMC-SC");
    }

    #[test]
    fn variants_map_to_legacy_faithful_modes() {
        let rc = IrmcConfig::new(Variant::ReceiverCollect, 3, 1, 3, 1, 2);
        assert_eq!(rc.mode, ChannelMode::ReliableCast { dedup: false });
        assert!(!rc.dedup());
        let sc = IrmcConfig::new(Variant::SenderCollect, 3, 1, 3, 1, 2);
        assert_eq!(sc.mode, ChannelMode::SenderCast { overlap: true });
        assert!(sc.sc_overlap(), "§A.9 overlap stays the SC default");
    }

    #[test]
    fn mode_builder_replaces_flag_sprawl() {
        let c = IrmcConfig::new(Variant::ReceiverCollect, 3, 1, 3, 1, 2)
            .with_mode(ChannelMode::ReliableCast { dedup: true });
        assert!(c.dedup());
        assert_eq!(c.variant(), Variant::ReceiverCollect);
        assert!(!c.sc_overlap(), "overlap is an SC-only lever");
        #[allow(deprecated)]
        let sc = IrmcConfig::new(Variant::SenderCollect, 3, 1, 3, 1, 2).with_sc_overlap(false);
        assert_eq!(sc.mode, ChannelMode::SenderCast { overlap: false });
    }
}
