//! Flow-control windows.

use serde::{Deserialize, Serialize};
use spider_types::Position;

/// A subchannel flow-control window: the contiguous range of positions a
/// party may currently use, `[start, start + capacity - 1]` inclusive.
///
/// Windows only ever move forward (§3.2); [`Window::advance_to`] ignores
/// regressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Window {
    start: Position,
    capacity: u64,
}

impl Window {
    /// Creates a window starting at position 1 (the paper's convention).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: u64) -> Self {
        assert!(capacity >= 1, "window capacity must be at least 1");
        Window { start: Position(1), capacity }
    }

    /// Lower bound (inclusive).
    pub fn start(&self) -> Position {
        self.start
    }

    /// Upper bound (inclusive).
    pub fn end(&self) -> Position {
        Position(self.start.0 + self.capacity - 1)
    }

    /// Window size.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Whether `p` falls inside the window.
    pub fn contains(&self, p: Position) -> bool {
        p >= self.start && p <= self.end()
    }

    /// Whether `p` is below the window (too old to use).
    pub fn is_below(&self, p: Position) -> bool {
        p < self.start
    }

    /// Whether `p` is above the window (must wait for a shift).
    pub fn is_above(&self, p: Position) -> bool {
        p > self.end()
    }

    /// Moves the start forward to `p`; returns `true` if the window moved.
    /// Calls with `p <= start` are ignored (windows never regress).
    pub fn advance_to(&mut self, p: Position) -> bool {
        if p > self.start {
            self.start = p;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_window_starts_at_one() {
        let w = Window::new(10);
        assert_eq!(w.start(), Position(1));
        assert_eq!(w.end(), Position(10));
        assert!(w.contains(Position(1)));
        assert!(w.contains(Position(10)));
        assert!(w.is_above(Position(11)));
        assert!(w.is_below(Position(0)));
    }

    #[test]
    fn advance_is_monotonic() {
        let mut w = Window::new(5);
        assert!(w.advance_to(Position(4)));
        assert_eq!(w.start(), Position(4));
        assert_eq!(w.end(), Position(8));
        assert!(!w.advance_to(Position(3)), "regression ignored");
        assert_eq!(w.start(), Position(4));
        assert!(!w.advance_to(Position(4)), "same position is a no-op");
    }

    #[test]
    #[should_panic(expected = "capacity must be at least 1")]
    fn zero_capacity_rejected() {
        let _ = Window::new(0);
    }

    #[test]
    fn capacity_one_window_is_a_single_slot() {
        let mut w = Window::new(1);
        assert_eq!(w.start(), w.end());
        w.advance_to(Position(7));
        assert!(w.contains(Position(7)));
        assert!(!w.contains(Position(8)));
    }
}
