//! Typed rejection reasons for incoming channel frames.
//!
//! IRMC endpoints sit on the trust boundary between regions: every frame
//! they handle may come from a faulty node, so the handlers must be total
//! — no input may panic them — and rejections should be observable rather
//! than silent `return`s. Handlers return `Result<(), IrmcError>`; callers
//! treat `Err` as "frame discarded" (the protocol tolerates it by design)
//! but can log or count the reason.

use crate::Subchannel;
use spider_types::Position;

/// Why an incoming channel frame was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IrmcError {
    /// The claimed peer index is outside the configured group.
    UnknownEndpoint {
        /// The out-of-range index.
        index: usize,
    },
    /// Signature (or share-quorum) verification failed.
    BadSignature {
        /// Subchannel of the offending frame.
        sc: Subchannel,
        /// First position the signature claimed to cover.
        p: Position,
    },
    /// Range bounds are malformed: fewer than two slots, or more than the
    /// window capacity (correct endpoints never emit either).
    MalformedRange {
        /// Subchannel of the offending frame.
        sc: Subchannel,
        /// Claimed first position.
        first: Position,
        /// Claimed slot count.
        count: u64,
    },
    /// The frame belongs to the other IRMC variant (RC vs SC): the peer
    /// disagrees about the channel configuration.
    WrongVariant,
    /// A group-internal frame (e.g. a signature share) arrived at an
    /// endpoint outside that group.
    UnexpectedFrame,
    /// A content copy for a dedup range hashed to a Merkle root that
    /// contradicts the root the vouch quorum agreed on: the shipping
    /// sender is faulty (tampered or equivocating content). The frame is
    /// discarded; the receiver keeps (or resumes) fetching from other
    /// vouchers.
    VouchMismatch {
        /// Subchannel of the offending range.
        sc: Subchannel,
        /// First position of the offending range.
        first: Position,
    },
    /// The primary carrier of a vouched range failed to deliver content
    /// before the supervision timeout; the receiver has fallen back to
    /// requesting the content from another voucher. Informational: the
    /// protocol recovers on its own, but callers may count occurrences.
    CarrierTimeout {
        /// Subchannel of the stalled range.
        sc: Subchannel,
        /// First position of the stalled range.
        first: Position,
    },
    /// The position lies absurdly far above the flow-control window; a
    /// correct peer is window-limited, so this is a memory-exhaustion
    /// attempt. (Positions *below* the window are late duplicates and are
    /// dropped silently — they are normal under retransmission.)
    OutOfWindow {
        /// Subchannel of the offending frame.
        sc: Subchannel,
        /// The rejected position.
        p: Position,
    },
}

impl std::fmt::Display for IrmcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IrmcError::UnknownEndpoint { index } => {
                write!(f, "unknown peer endpoint index {index}")
            }
            IrmcError::BadSignature { sc, p } => {
                write!(f, "signature verification failed (sc {sc}, position {})", p.0)
            }
            IrmcError::MalformedRange { sc, first, count } => {
                write!(f, "malformed range (sc {sc}, first {}, count {count})", first.0)
            }
            IrmcError::WrongVariant => write!(f, "frame belongs to the other IRMC variant"),
            IrmcError::UnexpectedFrame => write!(f, "group-internal frame from outside the group"),
            IrmcError::VouchMismatch { sc, first } => {
                write!(f, "content contradicts vouched root (sc {sc}, first {})", first.0)
            }
            IrmcError::CarrierTimeout { sc, first } => {
                write!(f, "carrier timed out, refetching (sc {sc}, first {})", first.0)
            }
            IrmcError::OutOfWindow { sc, p } => {
                write!(f, "position far above window (sc {sc}, position {})", p.0)
            }
        }
    }
}

impl std::error::Error for IrmcError {}
