//! Channel-internal wire messages (Figs 18–20).

use crate::{Content, Subchannel};
use spider_crypto::{Digest, Signature};
use spider_types::wire::{DIGEST_BYTES, HEADER_BYTES, MAC_BYTES, SIG_BYTES};
use spider_types::{Position, WireSize};

/// Messages originating at sender endpoints.
#[derive(Debug, Clone, PartialEq)]
pub enum ChannelMsg<M> {
    /// IRMC-RC: a sender's signed copy of the content for `(sc, p)`.
    Send {
        /// Subchannel.
        sc: Subchannel,
        /// Position.
        p: Position,
        /// The content.
        msg: M,
        /// The sender's signature over (sc, p, digest(msg)).
        sig: Signature,
    },
    /// IRMC-SC: signature share exchanged within the sender group.
    SigShare {
        /// Subchannel.
        sc: Subchannel,
        /// Position.
        p: Position,
        /// Digest of the content being vouched for.
        digest: Digest,
        /// The share (a signature over (sc, p, digest)).
        sig: Signature,
    },
    /// IRMC-SC: a collector's certificate carrying the content plus
    /// `fs + 1` signature shares.
    Certificate {
        /// Subchannel.
        sc: Subchannel,
        /// Position.
        p: Position,
        /// The content.
        msg: M,
        /// `fs + 1` shares from distinct senders over (sc, p, digest(msg)).
        shares: Vec<Signature>,
    },
    /// IRMC-SC: periodic progress announcement — per subchannel, the
    /// highest position for which the sender holds gap-free certificates.
    Progress {
        /// (subchannel, highest certified position) pairs.
        positions: Vec<(Subchannel, Position)>,
    },
    /// A sender-side request to move a subchannel window forward.
    Move {
        /// Subchannel.
        sc: Subchannel,
        /// Requested new window start.
        p: Position,
    },
}

impl<M: Content> WireSize for ChannelMsg<M> {
    fn wire_size(&self) -> usize {
        match self {
            ChannelMsg::Send { msg, .. } => HEADER_BYTES + 16 + msg.wire_size() + SIG_BYTES,
            ChannelMsg::SigShare { .. } => HEADER_BYTES + 16 + DIGEST_BYTES + SIG_BYTES,
            ChannelMsg::Certificate { msg, shares, .. } => {
                HEADER_BYTES + 16 + msg.wire_size() + shares.len() * SIG_BYTES + MAC_BYTES
            }
            ChannelMsg::Progress { positions } => HEADER_BYTES + positions.len() * 16 + MAC_BYTES,
            ChannelMsg::Move { .. } => HEADER_BYTES + 16 + MAC_BYTES,
        }
    }
}

/// Messages originating at receiver endpoints.
#[derive(Debug, Clone, PartialEq)]
pub enum ReceiverMsg {
    /// Request to move a subchannel window forward.
    Move {
        /// Subchannel.
        sc: Subchannel,
        /// Requested new window start.
        p: Position,
    },
    /// IRMC-SC: announce the sender this receiver uses as collector for a
    /// subchannel.
    Select {
        /// Subchannel.
        sc: Subchannel,
        /// Chosen collector (sender index).
        collector: usize,
    },
}

impl WireSize for ReceiverMsg {
    fn wire_size(&self) -> usize {
        match self {
            ReceiverMsg::Move { .. } => HEADER_BYTES + 16 + MAC_BYTES,
            ReceiverMsg::Select { .. } => HEADER_BYTES + 12 + MAC_BYTES,
        }
    }
}

/// Digest bound to a channel slot: signatures cover the subchannel and
/// position as well as the content, so a share for one slot cannot be
/// replayed for another.
pub fn slot_digest(sc: Subchannel, p: Position, content: &Digest) -> Digest {
    Digest::builder().str("irmc-slot").u64(sc).u64(p.0).digest(content).finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spider_crypto::Digestible;

    #[derive(Debug, Clone, PartialEq)]
    struct Blob(Vec<u8>);
    impl WireSize for Blob {
        fn wire_size(&self) -> usize {
            self.0.len()
        }
    }
    impl Digestible for Blob {
        fn digest(&self) -> Digest {
            Digest::of_bytes(&self.0)
        }
    }

    #[test]
    fn certificate_carries_share_bytes() {
        let ring = spider_crypto::Keyring::new(1);
        let d = Digest::of_bytes(b"x");
        let sig = ring.sign(spider_crypto::KeyId(0), &d);
        let one: ChannelMsg<Blob> = ChannelMsg::Certificate {
            sc: 0,
            p: Position(1),
            msg: Blob(vec![0; 100]),
            shares: vec![sig],
        };
        let two: ChannelMsg<Blob> = ChannelMsg::Certificate {
            sc: 0,
            p: Position(1),
            msg: Blob(vec![0; 100]),
            shares: vec![sig, sig],
        };
        assert_eq!(two.wire_size() - one.wire_size(), SIG_BYTES);
    }

    #[test]
    fn slot_digest_separates_slots() {
        let content = Digest::of_bytes(b"m");
        let a = slot_digest(1, Position(5), &content);
        let b = slot_digest(1, Position(6), &content);
        let c = slot_digest(2, Position(5), &content);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn send_size_tracks_payload() {
        let ring = spider_crypto::Keyring::new(1);
        let d = Digest::of_bytes(b"x");
        let sig = ring.sign(spider_crypto::KeyId(0), &d);
        let small: ChannelMsg<Blob> =
            ChannelMsg::Send { sc: 0, p: Position(1), msg: Blob(vec![0; 10]), sig };
        let big: ChannelMsg<Blob> =
            ChannelMsg::Send { sc: 0, p: Position(1), msg: Blob(vec![0; 1000]), sig };
        assert_eq!(big.wire_size() - small.wire_size(), 990);
    }
}
