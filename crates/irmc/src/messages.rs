//! Channel-internal wire messages (Figs 18–20, plus the multi-slot range
//! certification extension).
//!
//! # Range certification wire format
//!
//! The per-slot messages (`Send`, `SigShare`, `Certificate`) cost one RSA
//! signature per slot on the sender and one verification per slot (per
//! share for IRMC-SC) on the receiver — the saturating cost of a loaded
//! commit channel. The range messages amortize that: the per-slot content
//! digests become the leaves of a Merkle tree
//! ([`spider_crypto::merkle_root`]) and **one** signature covers
//! [`range_digest`] over the contiguous slot range `[first, first +
//! count)`.
//!
//! * [`ChannelMsg::SendRange`] — IRMC-RC: one signed copy of the whole
//!   range (the N-slot analogue of `Send`).
//! * [`ChannelMsg::RangeShare`] — IRMC-SC: a signature share over the
//!   range root exchanged inside the sender group (analogue of
//!   `SigShare`; the content stays out of the LAN exchange).
//! * [`ChannelMsg::RangeVouch`] — IRMC-RC dedup: a digest-only,
//!   MAC-authenticated confirmation of a range; the rotated primary
//!   carrier ships the one `SendRange` while everyone else vouches, so
//!   redundancy costs a digest instead of a payload.
//! * [`ChannelMsg::RangeContent`] — IRMC-SC: the collector ships the raw
//!   range content to its receivers **before** shares arrive (§A.9
//!   overlap). Carries no proof; receivers buffer it and deliver nothing
//!   until a certificate covers it. IRMC-RC dedup reuses it as the
//!   answer to a receiver's [`ReceiverMsg::FetchRange`].
//! * [`ChannelMsg::RangeCertificate`] — IRMC-SC: the compact shares-only
//!   certificate (root + `fs + 1` signatures); the content is *not*
//!   re-shipped.
//!
//! A range of length 1 is never emitted: senders degrade to the legacy
//! per-slot messages so old and new endpoints interoperate byte-for-byte.
//! Range payloads are shared via [`Arc`] so multi-receiver fan-out and
//! SC re-shipping clone a pointer, not the content.

use crate::{Content, Subchannel};
use spider_crypto::{Digest, Signature};
use spider_types::wire::{DIGEST_BYTES, HEADER_BYTES, MAC_BYTES, SIG_BYTES};
use spider_types::{Position, WireSize};
use std::sync::Arc;

/// Messages originating at sender endpoints.
#[derive(Debug, Clone, PartialEq)]
pub enum ChannelMsg<M> {
    /// IRMC-RC: a sender's signed copy of the content for `(sc, p)`.
    Send {
        /// Subchannel.
        sc: Subchannel,
        /// Position.
        p: Position,
        /// The content.
        msg: M,
        /// The sender's signature over (sc, p, digest(msg)).
        sig: Signature,
    },
    /// IRMC-SC: signature share exchanged within the sender group.
    SigShare {
        /// Subchannel.
        sc: Subchannel,
        /// Position.
        p: Position,
        /// Digest of the content being vouched for.
        digest: Digest,
        /// The share (a signature over (sc, p, digest)).
        sig: Signature,
    },
    /// IRMC-SC: a collector's certificate carrying the content plus
    /// `fs + 1` signature shares.
    Certificate {
        /// Subchannel.
        sc: Subchannel,
        /// Position.
        p: Position,
        /// The content (shared: fan-out clones the pointer only).
        msg: Arc<M>,
        /// `fs + 1` shares from distinct senders over (sc, p, digest(msg)).
        shares: Vec<Signature>,
    },
    /// IRMC-RC: a sender's signed copy of a contiguous slot range
    /// `[first, first + msgs.len())`; the signature covers
    /// [`range_digest`] of the Merkle root over the per-slot digests.
    SendRange {
        /// Subchannel.
        sc: Subchannel,
        /// First position of the range.
        first: Position,
        /// Content of each slot, in position order.
        msgs: Arc<Vec<M>>,
        /// Signature over `range_digest(sc, first, len, root)`.
        sig: Signature,
    },
    /// IRMC-SC: signature share over a slot range's Merkle root,
    /// exchanged within the sender group.
    RangeShare {
        /// Subchannel.
        sc: Subchannel,
        /// First position of the range.
        first: Position,
        /// Number of slots covered.
        count: u32,
        /// Merkle root over the per-slot content digests.
        root: Digest,
        /// Signature over `range_digest(sc, first, count, root)`.
        sig: Signature,
    },
    /// Digest-only range confirmation (IRMC-RC dedup): the statement that
    /// this sender submitted a range hashing to `root`, without shipping
    /// the content. The deterministically-rotated carrier ships the one
    /// [`Self::SendRange`]; every other sender ships this instead, so
    /// content crosses the wire and gets hashed at most once per range on
    /// the happy path. Authenticated by the transport MAC: a vouch is
    /// consumed only by the receiving endpoint and never forwarded as
    /// proof to a third party, so no signature is needed (IRMC-RC's
    /// trust model, Fig 18).
    RangeVouch {
        /// Subchannel.
        sc: Subchannel,
        /// First position of the range.
        first: Position,
        /// Number of slots covered.
        count: u32,
        /// Merkle root over the per-slot content digests.
        root: Digest,
    },
    /// Raw range content. IRMC-SC: shipped by the collector ahead of
    /// certification (§A.9 overlap). IRMC-RC dedup: a voucher's answer to
    /// [`ReceiverMsg::FetchRange`] when the primary carrier stalls.
    /// Authenticated by the transport MAC only; never deliverable without
    /// a matching [`Self::RangeCertificate`] (SC) or vouch quorum whose
    /// root the content hashes to (RC dedup).
    RangeContent {
        /// Subchannel.
        sc: Subchannel,
        /// First position of the range.
        first: Position,
        /// Content of each slot, in position order.
        msgs: Arc<Vec<M>>,
    },
    /// IRMC-SC: shares-only certificate for a slot range; pairs with the
    /// content from an earlier [`Self::RangeContent`].
    RangeCertificate {
        /// Subchannel.
        sc: Subchannel,
        /// First position of the range.
        first: Position,
        /// Number of slots covered.
        count: u32,
        /// Merkle root over the per-slot content digests.
        root: Digest,
        /// `fs + 1` shares from distinct senders over
        /// `range_digest(sc, first, count, root)`.
        shares: Vec<Signature>,
    },
    /// IRMC-SC: periodic progress announcement — per subchannel, the
    /// highest position for which the sender holds gap-free certificates.
    Progress {
        /// (subchannel, highest certified position) pairs.
        positions: Vec<(Subchannel, Position)>,
    },
    /// A sender-side request to move a subchannel window forward.
    Move {
        /// Subchannel.
        sc: Subchannel,
        /// Requested new window start.
        p: Position,
    },
}

impl<M: Content> WireSize for ChannelMsg<M> {
    fn wire_size(&self) -> usize {
        match self {
            ChannelMsg::Send { msg, .. } => HEADER_BYTES + 16 + msg.wire_size() + SIG_BYTES,
            ChannelMsg::SigShare { .. } => HEADER_BYTES + 16 + DIGEST_BYTES + SIG_BYTES,
            ChannelMsg::Certificate { msg, shares, .. } => {
                HEADER_BYTES + 16 + msg.wire_size() + shares.len() * SIG_BYTES + MAC_BYTES
            }
            ChannelMsg::SendRange { msgs, .. } => {
                HEADER_BYTES + 20 + payload_size(msgs) + SIG_BYTES
            }
            ChannelMsg::RangeShare { .. } => HEADER_BYTES + 20 + DIGEST_BYTES + SIG_BYTES,
            ChannelMsg::RangeVouch { .. } => HEADER_BYTES + 20 + DIGEST_BYTES + MAC_BYTES,
            ChannelMsg::RangeContent { msgs, .. } => {
                HEADER_BYTES + 20 + payload_size(msgs) + MAC_BYTES
            }
            ChannelMsg::RangeCertificate { shares, .. } => {
                HEADER_BYTES + 20 + DIGEST_BYTES + shares.len() * SIG_BYTES + MAC_BYTES
            }
            ChannelMsg::Progress { positions } => HEADER_BYTES + positions.len() * 16 + MAC_BYTES,
            ChannelMsg::Move { .. } => HEADER_BYTES + 16 + MAC_BYTES,
        }
    }

    fn trace_kind(&self) -> &'static str {
        match self {
            ChannelMsg::Send { .. } | ChannelMsg::SendRange { .. } => "cast",
            ChannelMsg::SigShare { .. } | ChannelMsg::RangeShare { .. } => "share",
            ChannelMsg::Certificate { .. } | ChannelMsg::RangeCertificate { .. } => "cert",
            ChannelMsg::RangeVouch { .. } => "vouch",
            ChannelMsg::RangeContent { .. } => "content",
            ChannelMsg::Progress { .. } | ChannelMsg::Move { .. } => "ctrl",
        }
    }

    fn trace_reqs(&self, visit: &mut dyn FnMut(u64)) {
        // Content-bearing variants carry their payloads' requests; the
        // digest-only ones (shares, vouches, shares-only certificates,
        // progress, moves) carry none and thus record no causal edges.
        match self {
            ChannelMsg::Send { msg, .. } => msg.trace_reqs(visit),
            ChannelMsg::Certificate { msg, .. } => msg.trace_reqs(visit),
            ChannelMsg::SendRange { msgs, .. } | ChannelMsg::RangeContent { msgs, .. } => {
                for m in msgs.iter() {
                    m.trace_reqs(visit);
                }
            }
            ChannelMsg::SigShare { .. }
            | ChannelMsg::RangeShare { .. }
            | ChannelMsg::RangeVouch { .. }
            | ChannelMsg::RangeCertificate { .. }
            | ChannelMsg::Progress { .. }
            | ChannelMsg::Move { .. } => {}
        }
    }
}

/// Total payload bytes of a range (per-slot content plus a small length
/// frame per slot).
fn payload_size<M: Content>(msgs: &[M]) -> usize {
    msgs.iter().map(|m| 4 + m.wire_size()).sum()
}

/// Messages originating at receiver endpoints.
#[derive(Debug, Clone, PartialEq)]
pub enum ReceiverMsg {
    /// Request to move a subchannel window forward.
    Move {
        /// Subchannel.
        sc: Subchannel,
        /// Requested new window start.
        p: Position,
    },
    /// IRMC-SC: announce the sender this receiver uses as collector for a
    /// subchannel.
    Select {
        /// Subchannel.
        sc: Subchannel,
        /// Chosen collector (sender index).
        collector: usize,
    },
    /// IRMC-RC dedup: ask a voucher to ship the content of a range whose
    /// vouch quorum formed but whose primary carrier has not delivered.
    /// The voucher answers with [`ChannelMsg::RangeContent`].
    FetchRange {
        /// Subchannel.
        sc: Subchannel,
        /// First position of the stalled range.
        first: Position,
        /// Number of slots covered.
        count: u32,
    },
}

impl WireSize for ReceiverMsg {
    fn wire_size(&self) -> usize {
        match self {
            ReceiverMsg::Move { .. } => HEADER_BYTES + 16 + MAC_BYTES,
            ReceiverMsg::Select { .. } => HEADER_BYTES + 12 + MAC_BYTES,
            ReceiverMsg::FetchRange { .. } => HEADER_BYTES + 20 + MAC_BYTES,
        }
    }

    fn trace_kind(&self) -> &'static str {
        "ack"
    }
}

/// Deterministically rotates the primary content carrier of a dedup
/// range across the sender group: a bit-mixed hash (splitmix64
/// finalizer) of `(sc, first)` modulo `n_senders`.
///
/// Deliberately *not* `first % n_senders`: range firsts advance in
/// strides of the range length, so a plain modulus would park the
/// carrier role on a single sender forever whenever the stride and the
/// group size share a factor (e.g. stride 32, 4 senders) — the rotation
/// exists precisely to spread the signing + shipping cost evenly.
pub(crate) fn carrier_for(sc: Subchannel, first: Position, n_senders: usize) -> usize {
    let mut x = sc.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ first.0;
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x % n_senders.max(1) as u64) as usize
}

/// Digest bound to a channel slot: signatures cover the subchannel and
/// position as well as the content, so a share for one slot cannot be
/// replayed for another.
pub fn slot_digest(sc: Subchannel, p: Position, content: &Digest) -> Digest {
    Digest::builder().str("irmc-slot").u64(sc).u64(p.0).digest(content).finish()
}

/// Digest bound to a contiguous slot range: signatures cover the
/// subchannel, start position, and length as well as the Merkle root, so
/// a range signature cannot be replayed for a shifted or truncated range.
pub fn range_digest(sc: Subchannel, first: Position, count: u32, root: &Digest) -> Digest {
    Digest::builder().str("irmc-range").u64(sc).u64(first.0).u32(count).digest(root).finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spider_crypto::Digestible;

    #[derive(Debug, Clone, PartialEq)]
    struct Blob(Vec<u8>);
    impl WireSize for Blob {
        fn wire_size(&self) -> usize {
            self.0.len()
        }
    }
    impl Digestible for Blob {
        fn digest(&self) -> Digest {
            Digest::of_bytes(&self.0)
        }
    }

    #[test]
    fn certificate_carries_share_bytes() {
        let ring = spider_crypto::Keyring::new(1);
        let d = Digest::of_bytes(b"x");
        let sig = ring.sign(spider_crypto::KeyId(0), &d);
        let one: ChannelMsg<Blob> = ChannelMsg::Certificate {
            sc: 0,
            p: Position(1),
            msg: Arc::new(Blob(vec![0; 100])),
            shares: vec![sig],
        };
        let two: ChannelMsg<Blob> = ChannelMsg::Certificate {
            sc: 0,
            p: Position(1),
            msg: Arc::new(Blob(vec![0; 100])),
            shares: vec![sig, sig],
        };
        assert_eq!(two.wire_size() - one.wire_size(), SIG_BYTES);
    }

    #[test]
    fn carrier_rotation_covers_all_senders_under_fixed_stride() {
        // Range firsts advance in a fixed stride (1, 33, 65, ...); a plain
        // `first % n` would park the carrier on one sender forever. The
        // mixed rotation must keep every sender carrying a fair share.
        let mut seen = [0usize; 4];
        for i in 0..64u64 {
            seen[carrier_for(0, Position(1 + 32 * i), 4)] += 1;
        }
        for (s, &n) in seen.iter().enumerate() {
            assert!(n >= 8, "sender {s} carries only {n}/64 ranges");
        }
        // And the assignment is a pure function of (sc, first).
        assert_eq!(carrier_for(3, Position(97), 4), carrier_for(3, Position(97), 4));
    }

    #[test]
    fn slot_digest_separates_slots() {
        let content = Digest::of_bytes(b"m");
        let a = slot_digest(1, Position(5), &content);
        let b = slot_digest(1, Position(6), &content);
        let c = slot_digest(2, Position(5), &content);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn range_digest_binds_position_length_and_root() {
        let root = Digest::of_bytes(b"root");
        let base = range_digest(1, Position(5), 4, &root);
        assert_ne!(base, range_digest(1, Position(6), 4, &root), "shifted start");
        assert_ne!(base, range_digest(1, Position(5), 3, &root), "truncated length");
        assert_ne!(base, range_digest(2, Position(5), 4, &root), "other subchannel");
        assert_ne!(base, range_digest(1, Position(5), 4, &Digest::of_bytes(b"r2")), "other root");
    }

    #[test]
    fn send_size_tracks_payload() {
        let ring = spider_crypto::Keyring::new(1);
        let d = Digest::of_bytes(b"x");
        let sig = ring.sign(spider_crypto::KeyId(0), &d);
        let small: ChannelMsg<Blob> =
            ChannelMsg::Send { sc: 0, p: Position(1), msg: Blob(vec![0; 10]), sig };
        let big: ChannelMsg<Blob> =
            ChannelMsg::Send { sc: 0, p: Position(1), msg: Blob(vec![0; 1000]), sig };
        assert_eq!(big.wire_size() - small.wire_size(), 990);
    }

    #[test]
    fn range_messages_amortize_signature_bytes() {
        let ring = spider_crypto::Keyring::new(1);
        let d = Digest::of_bytes(b"x");
        let sig = ring.sign(spider_crypto::KeyId(0), &d);
        let n = 32usize;
        let range: ChannelMsg<Blob> = ChannelMsg::SendRange {
            sc: 0,
            first: Position(1),
            msgs: Arc::new((0..n).map(|_| Blob(vec![0; 100])).collect()),
            sig,
        };
        let single: ChannelMsg<Blob> =
            ChannelMsg::Send { sc: 0, p: Position(1), msg: Blob(vec![0; 100]), sig };
        assert!(
            range.wire_size() < n * single.wire_size(),
            "one signature over the range beats n signed singles"
        );
        // The shares-only certificate is content-free and tiny.
        let cert: ChannelMsg<Blob> = ChannelMsg::RangeCertificate {
            sc: 0,
            first: Position(1),
            count: n as u32,
            root: d,
            shares: vec![sig, sig],
        };
        assert!(cert.wire_size() < single.wire_size() + 2 * SIG_BYTES);
    }

    #[test]
    fn vouch_is_digest_sized_not_payload_sized() {
        let ring = spider_crypto::Keyring::new(1);
        let d = Digest::of_bytes(b"x");
        let sig = ring.sign(spider_crypto::KeyId(0), &d);
        let n = 32usize;
        let range: ChannelMsg<Blob> = ChannelMsg::SendRange {
            sc: 0,
            first: Position(1),
            msgs: Arc::new((0..n).map(|_| Blob(vec![0; 100])).collect()),
            sig,
        };
        let vouch: ChannelMsg<Blob> =
            ChannelMsg::RangeVouch { sc: 0, first: Position(1), count: n as u32, root: d };
        // The dedup premise on the wire: n_s - 1 vouches must be far
        // smaller than the redundant content copies they replace.
        assert!(vouch.wire_size() * 10 < range.wire_size());
        let fetch = ReceiverMsg::FetchRange { sc: 0, first: Position(1), count: n as u32 };
        assert!(fetch.wire_size() < vouch.wire_size());
    }
}
