//! Receiver-side IRMC endpoint (Fig 18 receiver half; Fig 20 for IRMC-SC).

use crate::config::{IrmcConfig, Variant};
use crate::messages::{slot_digest, ChannelMsg, ReceiverMsg};
use crate::window::Window;
use crate::{Action, Content, Subchannel};
use spider_crypto::{Digest, Keyring};
use spider_types::{Position, SimTime};
use std::collections::{BTreeMap, HashMap, HashSet};

/// Result of polling a position (the sans-IO form of Fig 14 `receive`).
#[derive(Debug, Clone, PartialEq)]
pub enum ReceiveResult<M> {
    /// The message for this position.
    Ready(M),
    /// The window has moved past the position: the receiver fell behind
    /// and must recover via checkpoint (§3.4). Carries the new window
    /// start, like the pseudocode's `⟨TooOld, s⟩`.
    TooOld(Position),
    /// Nothing deliverable yet; poll again after the next
    /// [`Action::Ready`] or [`Action::WindowMoved`] for this subchannel.
    Pending,
}

#[derive(Debug)]
struct ReceiverSub<M> {
    awin: Window,
    /// RC: per position, per sender: (content digest, message).
    rc_slots: BTreeMap<u64, HashMap<usize, (Digest, M)>>,
    /// SC (and RC once quorate): deliverable content per position.
    ready: BTreeMap<u64, M>,
    /// Positions for which `Action::Ready` was already emitted.
    announced: HashSet<u64>,
    /// Window-shift requests received from each sender.
    sender_moves: Vec<Position>,
    /// SC: per-sender claimed progress.
    progress: Vec<Position>,
    /// SC: merged progress (fs+1-highest sender claim).
    merged_progress: Position,
    /// SC: current collector (sender index).
    collector: usize,
    /// SC: whether the supervision timer is armed.
    timer_armed: bool,
}

impl<M> ReceiverSub<M> {
    fn new(cfg: &IrmcConfig, me: usize) -> Self {
        ReceiverSub {
            awin: Window::new(cfg.capacity),
            rc_slots: BTreeMap::new(),
            ready: BTreeMap::new(),
            announced: HashSet::new(),
            sender_moves: vec![Position(0); cfg.n_senders],
            progress: vec![Position(0); cfg.n_senders],
            merged_progress: Position(0),
            collector: me % cfg.n_senders,
            timer_armed: false,
        }
    }

    fn gc_below(&mut self, start: Position) {
        self.rc_slots.retain(|&p, _| p >= start.0);
        self.ready.retain(|&p, _| p >= start.0);
        self.announced.retain(|&p| p >= start.0);
    }
}

/// The receiver half of an IRMC, owned by one replica of the receiver
/// group.
pub struct ReceiverEndpoint<M> {
    cfg: IrmcConfig,
    me: usize,
    keyring: Keyring,
    subs: HashMap<Subchannel, ReceiverSub<M>>,
}

impl<M: Content> ReceiverEndpoint<M> {
    /// Creates receiver endpoint `me` of the channel.
    ///
    /// # Panics
    ///
    /// Panics if `me` is out of range.
    pub fn new(cfg: IrmcConfig, me: usize, keyring: Keyring) -> Self {
        assert!(me < cfg.n_receivers, "receiver index out of range");
        ReceiverEndpoint { cfg, me, keyring, subs: HashMap::new() }
    }

    /// This endpoint's index within the receiver group.
    pub fn index(&self) -> usize {
        self.me
    }

    /// Current flow-control window of a subchannel.
    pub fn window(&self, sc: Subchannel) -> Window {
        self.subs.get(&sc).map(|s| s.awin).unwrap_or_else(|| Window::new(self.cfg.capacity))
    }

    fn sub(&mut self, sc: Subchannel) -> &mut ReceiverSub<M> {
        let cfg = self.cfg.clone();
        let me = self.me;
        self.subs.entry(sc).or_insert_with(|| ReceiverSub::new(&cfg, me))
    }

    /// Polls for the message at `(sc, p)` (Fig 14 `receive`, non-blocking).
    pub fn try_receive(&mut self, sc: Subchannel, p: Position) -> ReceiveResult<M> {
        let sub = self.sub(sc);
        if sub.awin.is_below(p) {
            return ReceiveResult::TooOld(sub.awin.start());
        }
        match sub.ready.get(&p.0) {
            Some(m) => ReceiveResult::Ready(m.clone()),
            None => ReceiveResult::Pending,
        }
    }

    /// Moves the subchannel window forward on behalf of the local replica
    /// (Fig 14 `move_window`, receiver side). Notifies all senders.
    pub fn move_window(&mut self, sc: Subchannel, p: Position, out: &mut Vec<Action<M>>) {
        let sub = self.sub(sc);
        if !sub.awin.advance_to(p) {
            return;
        }
        sub.gc_below(p);
        out.push(Action::Charge(self.cfg.cost.hmac(32)));
        for s in 0..self.cfg.n_senders {
            out.push(Action::ToSender { to: s, msg: ReceiverMsg::Move { sc, p } });
        }
        out.push(Action::WindowMoved { sc, start: p });
    }

    /// Handles a message from sender endpoint `from`.
    pub fn on_sender_message(
        &mut self,
        now: SimTime,
        from: usize,
        msg: ChannelMsg<M>,
        out: &mut Vec<Action<M>>,
    ) {
        if from >= self.cfg.n_senders {
            return;
        }
        match msg {
            ChannelMsg::Send { sc, p, msg, sig } => {
                if self.cfg.variant != Variant::ReceiverCollect {
                    return;
                }
                // Verify the sender's signature over the slot.
                out.push(Action::Charge(
                    self.cfg.cost.hmac(msg.wire_size()) + self.cfg.cost.rsa_verify(),
                ));
                let digest = msg.digest();
                let slot = slot_digest(sc, p, &digest);
                if !self.keyring.verify(self.cfg.sender_keys[from], &slot, &sig) {
                    return;
                }
                let fs = self.cfg.fs;
                let sub = self.sub(sc);
                if sub.awin.is_below(p) || p.0 >= sub.awin.end().0 + sub.awin.capacity() {
                    // Below the window, or absurdly far above it (memory
                    // guard; correct senders are window-limited anyway).
                    return;
                }
                let slot_map = sub.rc_slots.entry(p.0).or_default();
                slot_map.entry(from).or_insert((digest, msg));
                // Quorum: fs + 1 senders with identical content.
                let quorate = slot_map.values().filter(|(d, _)| *d == digest).count() > fs;
                if quorate && !sub.ready.contains_key(&p.0) {
                    let m = slot_map
                        .values()
                        .find(|(d, _)| *d == digest)
                        .map(|(_, m)| m.clone())
                        .expect("quorate content present");
                    sub.ready.insert(p.0, m);
                    if sub.announced.insert(p.0) {
                        out.push(Action::Ready { sc, p });
                    }
                }
            }
            ChannelMsg::Certificate { sc, p, msg, shares } => {
                if self.cfg.variant != Variant::SenderCollect {
                    return;
                }
                // Verify transport MAC + every contained share.
                out.push(Action::Charge(
                    self.cfg.cost.hmac(msg.wire_size())
                        + self.cfg.cost.rsa_verify() * shares.len() as u64,
                ));
                let digest = msg.digest();
                let slot = slot_digest(sc, p, &digest);
                let mut signers = HashSet::new();
                let valid = shares
                    .iter()
                    .filter(|sig| {
                        let idx = self.cfg.sender_keys.iter().position(|k| *k == sig.signer);
                        match idx {
                            Some(i) if signers.insert(i) => {
                                self.keyring.verify(sig.signer, &slot, sig)
                            }
                            _ => false,
                        }
                    })
                    .count();
                if valid < self.cfg.fs + 1 {
                    return;
                }
                let sub = self.sub(sc);
                if sub.awin.is_below(p) || p.0 >= sub.awin.end().0 + sub.awin.capacity() {
                    return;
                }
                if sub.ready.insert(p.0, msg).is_none() && sub.announced.insert(p.0) {
                    out.push(Action::Ready { sc, p });
                }
            }
            ChannelMsg::Progress { positions } => {
                if self.cfg.variant != Variant::SenderCollect {
                    return;
                }
                out.push(Action::Charge(self.cfg.cost.hmac(positions.len() * 16)));
                for (sc, p) in positions {
                    let fs = self.cfg.fs;
                    let timeout = self.cfg.collector_timeout;
                    let sub = self.sub(sc);
                    if p > sub.progress[from] {
                        sub.progress[from] = p;
                    }
                    let mut claims = sub.progress.clone();
                    claims.sort_unstable_by(|a, b| b.cmp(a));
                    sub.merged_progress = claims[fs];
                    // Missing certificates up to the merged progress?
                    let missing = Self::first_missing(sub);
                    if missing.is_some() && !sub.timer_armed {
                        sub.timer_armed = true;
                        out.push(Action::SetTimer { token: sc, delay: timeout });
                    }
                }
                let _ = now;
            }
            ChannelMsg::Move { sc, p } => {
                out.push(Action::Charge(self.cfg.cost.hmac(32)));
                let fs = self.cfg.fs;
                let sub = self.sub(sc);
                if p <= sub.sender_moves[from] {
                    return;
                }
                sub.sender_moves[from] = p;
                // fs+1-highest sender request: at least one correct sender
                // asked for this shift (IRMC-Liveness III).
                let mut reqs = sub.sender_moves.clone();
                reqs.sort_unstable_by(|a, b| b.cmp(a));
                let nw = reqs[fs];
                if nw > sub.awin.start() {
                    self.move_window(sc, nw, out);
                }
            }
            ChannelMsg::SigShare { .. } => {
                // Sender-group-internal; a receiver should never see one.
            }
        }
    }

    /// First position in `[window start, merged progress]` without a
    /// certified message, if any.
    fn first_missing(sub: &ReceiverSub<M>) -> Option<Position> {
        let lo = sub.awin.start().0;
        let hi = sub.merged_progress.0;
        (lo..=hi).find(|p| !sub.ready.contains_key(p)).map(Position)
    }

    /// Handles the collector-supervision timer for subchannel `token`
    /// (IRMC-SC, Fig 20 L30-35).
    pub fn on_timer(&mut self, token: u64, _now: SimTime, out: &mut Vec<Action<M>>) {
        if self.cfg.variant != Variant::SenderCollect {
            return;
        }
        let sc = token;
        let n_senders = self.cfg.n_senders;
        let timeout = self.cfg.collector_timeout;
        let Some(sub) = self.subs.get_mut(&sc) else {
            return;
        };
        sub.timer_armed = false;
        if Self::first_missing(sub).is_none() {
            return;
        }
        // The collector failed to provide certificates that fs+1 senders
        // claim exist: switch to the next sender.
        sub.collector = (sub.collector + 1) % n_senders;
        let new_collector = sub.collector;
        sub.timer_armed = true;
        out.push(Action::Charge(self.cfg.cost.hmac(32)));
        for s in 0..n_senders {
            out.push(Action::ToSender {
                to: s,
                msg: ReceiverMsg::Select { sc, collector: new_collector },
            });
        }
        out.push(Action::SetTimer { token: sc, delay: timeout });
    }

    /// The collector this endpoint currently expects to serve `sc`.
    pub fn collector(&self, sc: Subchannel) -> usize {
        self.subs.get(&sc).map(|s| s.collector).unwrap_or(self.me % self.cfg.n_senders)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sender::SenderEndpoint;
    use crate::tests_support::Blob;
    use spider_crypto::CostModel;
    use spider_crypto::Digestible as _;

    fn cfg(variant: Variant) -> IrmcConfig {
        IrmcConfig::new(variant, 3, 1, 3, 1, 8).with_cost(CostModel::zero())
    }

    fn rc_receiver() -> ReceiverEndpoint<Blob> {
        ReceiverEndpoint::new(cfg(Variant::ReceiverCollect), 0, Keyring::new(5))
    }

    /// Produces the signed `Send` a correct sender would emit.
    fn send_from(idx: usize, sc: Subchannel, p: Position, m: &Blob) -> ChannelMsg<Blob> {
        let mut s: SenderEndpoint<Blob> =
            SenderEndpoint::new(cfg(Variant::ReceiverCollect), idx, Keyring::new(5));
        let mut out = Vec::new();
        s.send(sc, p, m.clone(), &mut out);
        out.into_iter()
            .find_map(|a| match a {
                Action::ToReceiver { to: 0, msg } => Some(msg),
                _ => None,
            })
            .expect("send emitted")
    }

    #[test]
    fn rc_delivers_after_fs_plus_one_matching_sends() {
        let mut r = rc_receiver();
        let m = Blob::new(b"value");
        let mut out = Vec::new();
        r.on_sender_message(SimTime::ZERO, 0, send_from(0, 3, Position(1), &m), &mut out);
        assert_eq!(
            r.try_receive(3, Position(1)),
            ReceiveResult::Pending,
            "one sender is not enough"
        );
        r.on_sender_message(SimTime::ZERO, 1, send_from(1, 3, Position(1), &m), &mut out);
        assert!(out.iter().any(|a| matches!(a, Action::Ready { sc: 3, p } if *p == Position(1))));
        assert_eq!(r.try_receive(3, Position(1)), ReceiveResult::Ready(m));
    }

    #[test]
    fn rc_conflicting_contents_never_deliver() {
        let mut r = rc_receiver();
        let mut out = Vec::new();
        r.on_sender_message(
            SimTime::ZERO,
            0,
            send_from(0, 0, Position(1), &Blob::new(b"a")),
            &mut out,
        );
        r.on_sender_message(
            SimTime::ZERO,
            1,
            send_from(1, 0, Position(1), &Blob::new(b"b")),
            &mut out,
        );
        r.on_sender_message(
            SimTime::ZERO,
            2,
            send_from(2, 0, Position(1), &Blob::new(b"c")),
            &mut out,
        );
        assert_eq!(r.try_receive(0, Position(1)), ReceiveResult::Pending);
        assert!(!out.iter().any(|a| matches!(a, Action::Ready { .. })));
    }

    #[test]
    fn rc_duplicate_sender_does_not_count_twice() {
        let mut r = rc_receiver();
        let m = Blob::new(b"v");
        let mut out = Vec::new();
        let msg = send_from(0, 0, Position(1), &m);
        r.on_sender_message(SimTime::ZERO, 0, msg.clone(), &mut out);
        r.on_sender_message(SimTime::ZERO, 0, msg, &mut out);
        assert_eq!(r.try_receive(0, Position(1)), ReceiveResult::Pending);
    }

    #[test]
    fn rc_forged_signature_is_discarded() {
        let mut r = rc_receiver();
        let m = Blob::new(b"v");
        // Sender 2's message relabeled as coming from sender 0: signature
        // check must fail (claims sender 0's key but is signed by 2).
        let msg = send_from(2, 0, Position(1), &m);
        let mut out = Vec::new();
        r.on_sender_message(SimTime::ZERO, 0, msg, &mut out);
        let msg1 = send_from(1, 0, Position(1), &m);
        r.on_sender_message(SimTime::ZERO, 1, msg1, &mut out);
        assert_eq!(
            r.try_receive(0, Position(1)),
            ReceiveResult::Pending,
            "forged copy must not count toward the quorum"
        );
    }

    #[test]
    fn below_window_reports_too_old() {
        let mut r = rc_receiver();
        let mut out = Vec::new();
        r.move_window(0, Position(5), &mut out);
        assert_eq!(r.try_receive(0, Position(2)), ReceiveResult::TooOld(Position(5)));
        // Moves notify every sender.
        let moves = out
            .iter()
            .filter(|a| matches!(a, Action::ToSender { msg: ReceiverMsg::Move { .. }, .. }))
            .count();
        assert_eq!(moves, 3);
    }

    #[test]
    fn sender_moves_shift_window_at_fs_plus_one() {
        let mut r = rc_receiver();
        let mut out = Vec::new();
        r.on_sender_message(SimTime::ZERO, 0, ChannelMsg::Move { sc: 0, p: Position(9) }, &mut out);
        assert_eq!(r.window(0).start(), Position(1), "one sender cannot move the window");
        r.on_sender_message(SimTime::ZERO, 1, ChannelMsg::Move { sc: 0, p: Position(7) }, &mut out);
        // fs+1 = 2-highest of [9, 7, 0] = 7.
        assert_eq!(r.window(0).start(), Position(7));
        assert!(out
            .iter()
            .any(|a| matches!(a, Action::WindowMoved { start, .. } if *start == Position(7))));
    }

    #[test]
    fn sc_certificate_with_too_few_valid_shares_rejected() {
        let ring = Keyring::new(5);
        let mut r: ReceiverEndpoint<Blob> =
            ReceiverEndpoint::new(cfg(Variant::SenderCollect), 0, ring.clone());
        let m = Blob::new(b"v");
        let d = m.digest();
        let slot = slot_digest(0, Position(1), &d);
        let good = ring.sign(spider_crypto::KeyId(1000), &slot);
        // Second share is over different content — invalid for this slot.
        let other = slot_digest(0, Position(2), &d);
        let bad = ring.sign(spider_crypto::KeyId(1001), &other);
        let mut out = Vec::new();
        r.on_sender_message(
            SimTime::ZERO,
            0,
            ChannelMsg::Certificate {
                sc: 0,
                p: Position(1),
                msg: m.clone(),
                shares: vec![good, bad],
            },
            &mut out,
        );
        assert_eq!(r.try_receive(0, Position(1)), ReceiveResult::Pending);
        // Duplicate shares from one sender are no better.
        r.on_sender_message(
            SimTime::ZERO,
            0,
            ChannelMsg::Certificate {
                sc: 0,
                p: Position(1),
                msg: m.clone(),
                shares: vec![good, good],
            },
            &mut out,
        );
        assert_eq!(r.try_receive(0, Position(1)), ReceiveResult::Pending);
    }

    #[test]
    fn sc_progress_without_certificates_arms_timer_and_switches_collector() {
        let ring = Keyring::new(5);
        let mut r: ReceiverEndpoint<Blob> =
            ReceiverEndpoint::new(cfg(Variant::SenderCollect), 0, ring);
        assert_eq!(r.collector(0), 0);
        let mut out = Vec::new();
        // fs + 1 = 2 senders claim position 4 is certified.
        for s in [1, 2] {
            r.on_sender_message(
                SimTime::ZERO,
                s,
                ChannelMsg::Progress { positions: vec![(0, Position(4))] },
                &mut out,
            );
        }
        assert!(out.iter().any(|a| matches!(a, Action::SetTimer { token: 0, .. })));
        // Timer fires; nothing arrived from collector 0 -> switch to 1.
        out.clear();
        r.on_timer(0, SimTime::from_millis(500), &mut out);
        assert_eq!(r.collector(0), 1);
        let selects = out
            .iter()
            .filter(|a| {
                matches!(a, Action::ToSender { msg: ReceiverMsg::Select { collector: 1, .. }, .. })
            })
            .count();
        assert_eq!(selects, 3, "announced to every sender");
    }
}
