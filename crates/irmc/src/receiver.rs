//! Receiver-side IRMC endpoint (Fig 18 receiver half; Fig 20 for
//! IRMC-SC), with multi-slot range verification.
//!
//! Range messages amortize the per-slot RSA verification: a
//! [`ChannelMsg::SendRange`] (RC) or [`ChannelMsg::RangeCertificate`]
//! (SC) is checked with **one** signature verification per signer for the
//! whole contiguous slot range — the receiver recomputes the Merkle root
//! over the per-slot content digests and accepts or rejects the range as
//! a unit (a single tampered slot invalidates the root, so nothing from
//! the range delivers). For IRMC-SC the raw content may arrive ahead of
//! its certificate (§A.9 overlap, [`ChannelMsg::RangeContent`]); it is
//! buffered and **never** delivered until a valid certificate covers it.

use crate::config::{IrmcConfig, Variant};
use crate::messages::{range_digest, slot_digest, ChannelMsg, ReceiverMsg};
use crate::window::Window;
use crate::{Action, Content, IrmcError, Subchannel};
use spider_crypto::{merkle_root, Digest, Keyring, RootCache, Signature};
use spider_types::{Position, SimTime};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// How the content of a delivered slot reached this receiver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DedupOutcome {
    /// Legacy fan-in: IRMC-RC quorum of full content copies, or an
    /// IRMC-SC certified delivery. No deduplication was in play.
    Replicated,
    /// RC dedup happy path: the rotated primary carrier's signed content
    /// copy, confirmed by the vouch quorum (content crossed the wire and
    /// was hashed exactly once).
    Primary,
    /// RC dedup fallback: raw content shipped by a voucher (after a
    /// [`ReceiverMsg::FetchRange`], or an unsolicited early copy),
    /// verified by comparison against the vouched Merkle root.
    Refetched,
}

/// A delivered message plus its provenance: which sender's copy was
/// delivered and whether the dedup machinery was involved.
#[derive(Debug, Clone, PartialEq)]
pub struct Delivery<M> {
    /// The delivered message.
    pub payload: M,
    /// The slot it was delivered for.
    pub position: Position,
    /// Index of the sender whose content copy was delivered.
    pub carrier: usize,
    /// How the content reached this endpoint.
    pub dedup: DedupOutcome,
}

/// Result of polling a position (the sans-IO form of Fig 14 `receive`).
#[derive(Debug, Clone, PartialEq)]
pub enum ReceiveResult<M> {
    /// The message for this position, with delivery provenance.
    Ready(Delivery<M>),
    /// The window has moved past the position: the receiver fell behind
    /// and must recover via checkpoint (§3.4). Carries the new window
    /// start, like the pseudocode's `⟨TooOld, s⟩`.
    TooOld(Position),
    /// Nothing deliverable yet; poll again after the next
    /// [`Action::Ready`] or [`Action::WindowMoved`] for this subchannel.
    Pending,
}

impl<M> ReceiveResult<M> {
    /// The delivered payload, if any — for callers that don't care about
    /// provenance.
    pub fn into_payload(self) -> Option<M> {
        match self {
            ReceiveResult::Ready(d) => Some(d.payload),
            ReceiveResult::TooOld(_) | ReceiveResult::Pending => None,
        }
    }
}

/// Range content that cannot deliver yet: SC content ahead of its
/// certificate (§A.9 overlap), or RC-dedup content ahead of its vouch
/// quorum.
#[derive(Debug)]
struct PendingContent<M> {
    /// Sender that shipped it (at most one buffered candidate per sender,
    /// so a faulty collector cannot evict honest content).
    from: usize,
    msgs: Arc<Vec<M>>,
    root: Digest,
    /// Provenance to attach on delivery ([`DedupOutcome::Replicated`]
    /// for SC, `Primary`/`Refetched` for RC dedup).
    outcome: DedupOutcome,
}

#[derive(Debug)]
struct ReceiverSub<M> {
    awin: Window,
    /// RC: per position, per sender: (content digest, message).
    rc_slots: BTreeMap<u64, BTreeMap<usize, (Digest, M)>>,
    /// RC dedup: per range first position, per sender: the vouched
    /// statement (count, Merkle root). A verified `SendRange` registers
    /// as its sender's statement too, so the carrier counts toward the
    /// quorum. First statement per sender wins (no equivocation).
    vouches: BTreeMap<u64, BTreeMap<usize, (u32, Digest)>>,
    /// RC dedup: round-robin cursor over the vouchers of a stalled range,
    /// so successive refetches try different senders.
    fetch_cursor: BTreeMap<u64, usize>,
    /// Deliverable content per position, with the index of the sender
    /// whose copy was delivered and the dedup provenance.
    ready: BTreeMap<u64, (M, usize, DedupOutcome)>,
    /// Positions for which `Action::Ready` was already emitted.
    announced: BTreeSet<u64>,
    /// SC: uncertified early-shipped range content, by first position;
    /// at most one candidate per sender (a faulty collector must not be
    /// able to evict the honest content).
    pending_content: BTreeMap<u64, Vec<PendingContent<M>>>,
    /// SC: validated certificates that arrived before their content, by
    /// first position: (count, root) statements, at most one per sender
    /// (diverged boundaries can certify several lengths for one start).
    pending_certs: BTreeMap<u64, Vec<(u32, Digest)>>,
    /// Window-shift requests received from each sender.
    sender_moves: Vec<Position>,
    /// Scratch buffer for the `fs + 1`-selections (reused across calls).
    scratch: Vec<Position>,
    /// SC: per-sender claimed progress.
    progress: Vec<Position>,
    /// SC: merged progress (fs+1-highest sender claim).
    merged_progress: Position,
    /// Cached first-missing cursor: every position in
    /// `[awin.start, missing_cursor)` is ready, so the gap scan resumes
    /// here instead of rescanning from the window start.
    missing_cursor: u64,
    /// SC: current collector (sender index).
    collector: usize,
    /// SC: whether the supervision timer is armed.
    timer_armed: bool,
}

impl<M> ReceiverSub<M> {
    fn new(cfg: &IrmcConfig, me: usize) -> Self {
        ReceiverSub {
            awin: Window::new(cfg.capacity),
            rc_slots: BTreeMap::new(),
            vouches: BTreeMap::new(),
            fetch_cursor: BTreeMap::new(),
            ready: BTreeMap::new(),
            announced: BTreeSet::new(),
            pending_content: BTreeMap::new(),
            pending_certs: BTreeMap::new(),
            sender_moves: vec![Position(0); cfg.n_senders],
            scratch: Vec::new(),
            progress: vec![Position(0); cfg.n_senders],
            merged_progress: Position(0),
            missing_cursor: 1,
            collector: me % cfg.n_senders,
            timer_armed: false,
        }
    }

    fn gc_below(&mut self, start: Position) {
        let s = start.0;
        self.rc_slots.retain(|&p, _| p >= s);
        self.vouches.retain(|&p, stmts| stmts.values().any(|&(c, _)| p + c as u64 > s));
        self.fetch_cursor.retain(|&p, _| p >= s);
        self.ready.retain(|&p, _| p >= s);
        self.announced.retain(|&p| p >= s);
        self.pending_content.retain(|&p, cands| {
            cands.retain(|pc| p + pc.msgs.len() as u64 > s);
            !cands.is_empty()
        });
        self.pending_certs.retain(|&p, certs| {
            certs.retain(|(count, _)| p + *count as u64 > s);
            !certs.is_empty()
        });
        self.missing_cursor = self.missing_cursor.max(s);
    }
}

/// The receiver half of an IRMC, owned by one replica of the receiver
/// group.
pub struct ReceiverEndpoint<M> {
    cfg: IrmcConfig,
    me: usize,
    keyring: Keyring,
    subs: BTreeMap<Subchannel, ReceiverSub<M>>,
    /// RC dedup: range digests whose carrier signature already verified,
    /// so a retransmitted content copy is accepted by root comparison
    /// (one Merkle recompute, no second RSA verification). Keyed by the
    /// full [`range_digest`] — which binds `(sc, first, count, root)` —
    /// not the bare root, so a hit can never be replayed across ranges.
    root_cache: RootCache,
}

impl<M: Content> ReceiverEndpoint<M> {
    /// Creates receiver endpoint `me` of the channel.
    ///
    /// # Panics
    ///
    /// Panics if `me` is out of range.
    pub fn new(cfg: IrmcConfig, me: usize, keyring: Keyring) -> Self {
        assert!(me < cfg.n_receivers, "receiver index out of range");
        // Two windows' worth of verified range digests comfortably covers
        // in-flight retransmissions without unbounded growth.
        let root_cache = RootCache::new((cfg.capacity as usize).saturating_mul(2));
        ReceiverEndpoint { cfg, me, keyring, subs: BTreeMap::new(), root_cache }
    }

    /// This endpoint's index within the receiver group.
    pub fn index(&self) -> usize {
        self.me
    }

    /// Current flow-control window of a subchannel.
    pub fn window(&self, sc: Subchannel) -> Window {
        self.subs.get(&sc).map(|s| s.awin).unwrap_or_else(|| Window::new(self.cfg.capacity))
    }

    fn sub(&mut self, sc: Subchannel) -> &mut ReceiverSub<M> {
        let cfg = self.cfg.clone();
        let me = self.me;
        self.subs.entry(sc).or_insert_with(|| ReceiverSub::new(&cfg, me))
    }

    /// Polls for the message at `(sc, p)` (Fig 14 `receive`, non-blocking).
    pub fn try_receive(&mut self, sc: Subchannel, p: Position) -> ReceiveResult<M> {
        let sub = self.sub(sc);
        if sub.awin.is_below(p) {
            return ReceiveResult::TooOld(sub.awin.start());
        }
        match sub.ready.get(&p.0) {
            Some((m, carrier, outcome)) => ReceiveResult::Ready(Delivery {
                payload: m.clone(),
                position: p,
                carrier: *carrier,
                dedup: *outcome,
            }),
            None => ReceiveResult::Pending,
        }
    }

    /// Moves the subchannel window forward on behalf of the local replica
    /// (Fig 14 `move_window`, receiver side). Notifies all senders.
    pub fn move_window(&mut self, sc: Subchannel, p: Position, out: &mut Vec<Action<M>>) {
        let sub = self.sub(sc);
        if !sub.awin.advance_to(p) {
            return;
        }
        sub.gc_below(p);
        out.push(Action::Charge(self.cfg.cost.hmac(32), "window_mac"));
        for s in 0..self.cfg.n_senders {
            out.push(Action::ToSender { to: s, msg: ReceiverMsg::Move { sc, p } });
        }
        out.push(Action::WindowMoved { sc, start: p });
    }

    /// Handles a message from sender endpoint `from`.
    ///
    /// `Err` means the frame was rejected (and why); the channel state is
    /// unchanged beyond the CPU cost already charged for inspecting it.
    /// Rejections are expected under Byzantine senders — callers discard
    /// the frame and may count or log the reason.
    pub fn on_sender_message(
        &mut self,
        now: SimTime,
        from: usize,
        msg: ChannelMsg<M>,
        out: &mut Vec<Action<M>>,
    ) -> Result<(), IrmcError> {
        let _ = now;
        if from >= self.cfg.n_senders {
            return Err(IrmcError::UnknownEndpoint { index: from });
        }
        match msg {
            ChannelMsg::Send { sc, p, msg, sig } => self.on_send(from, sc, p, msg, sig, out),
            ChannelMsg::SendRange { sc, first, msgs, sig } => {
                self.on_send_range(from, sc, first, msgs, sig, out)
            }
            ChannelMsg::Certificate { sc, p, msg, shares } => {
                self.on_certificate(from, sc, p, msg, shares, out)
            }
            ChannelMsg::RangeVouch { sc, first, count, root } => {
                self.on_range_vouch(from, sc, first, count, root, out)
            }
            ChannelMsg::RangeContent { sc, first, msgs } => {
                self.on_range_content(from, sc, first, msgs, out)
            }
            ChannelMsg::RangeCertificate { sc, first, count, root, shares } => {
                self.on_range_certificate(sc, first, count, root, shares, out)
            }
            ChannelMsg::Progress { positions } => self.on_progress(from, positions, out),
            ChannelMsg::Move { sc, p } => self.on_sender_move(from, sc, p, out),
            ChannelMsg::SigShare { .. } | ChannelMsg::RangeShare { .. } => {
                // Sender-group-internal; a receiver should never see one.
                Err(IrmcError::UnexpectedFrame)
            }
        }
    }

    // ------------------------------------------------------------------
    // IRMC-RC
    // ------------------------------------------------------------------

    fn on_send(
        &mut self,
        from: usize,
        sc: Subchannel,
        p: Position,
        msg: M,
        sig: Signature,
        out: &mut Vec<Action<M>>,
    ) -> Result<(), IrmcError> {
        if self.cfg.variant() != Variant::ReceiverCollect {
            return Err(IrmcError::WrongVariant);
        }
        let Some(&key) = self.cfg.sender_keys.get(from) else {
            return Err(IrmcError::UnknownEndpoint { index: from });
        };
        // Verify the sender's signature over the slot.
        out.push(Action::Charge(
            self.cfg.cost.hmac(msg.wire_size()) + self.cfg.cost.rsa_verify(),
            "slot_verify",
        ));
        let digest = msg.digest();
        let slot = slot_digest(sc, p, &digest);
        if !self.keyring.verify(key, &slot, &sig) {
            return Err(IrmcError::BadSignature { sc, p });
        }
        self.credit_rc_slot(from, sc, p, digest, msg, out)
    }

    /// One signature verification covers the whole range; each member slot
    /// is then credited to the sender exactly like a legacy `Send`, so
    /// ranged and single-slot senders converge on the same per-slot
    /// quorums (mixed configurations interoperate).
    fn on_send_range(
        &mut self,
        from: usize,
        sc: Subchannel,
        first: Position,
        msgs: Arc<Vec<M>>,
        sig: Signature,
        out: &mut Vec<Action<M>>,
    ) -> Result<(), IrmcError> {
        if self.cfg.variant() != Variant::ReceiverCollect {
            return Err(IrmcError::WrongVariant);
        }
        let count = msgs.len();
        if count < 2 || count as u64 > self.cfg.capacity {
            // Senders never emit these; bogus.
            return Err(IrmcError::MalformedRange { sc, first, count: count as u64 });
        }
        let Some(&key) = self.cfg.sender_keys.get(from) else {
            return Err(IrmcError::UnknownEndpoint { index: from });
        };
        if self.cfg.dedup() {
            return self.on_dedup_send_range(from, sc, first, msgs, sig, out);
        }
        let bytes: usize = msgs.iter().map(|m| m.wire_size()).sum();
        // Hash all payloads, rebuild the tree, verify ONE signature.
        out.push(Action::Charge(
            self.cfg.cost.hmac(bytes) + self.cfg.cost.merkle(count) + self.cfg.cost.rsa_verify(),
            "range_verify",
        ));
        let leaves: Vec<Digest> = msgs.iter().map(|m| m.digest()).collect();
        let root = merkle_root(&leaves);
        let rd = range_digest(sc, first, count as u32, &root);
        if !self.keyring.verify(key, &rd, &sig) {
            // Any tampered member slot lands here: reject whole.
            return Err(IrmcError::BadSignature { sc, p: first });
        }
        let sub = self.sub(sc);
        if first.0 >= sub.awin.end().0 + sub.awin.capacity() {
            // Absurdly far above the window (memory guard).
            return Err(IrmcError::OutOfWindow { sc, p: first });
        }
        for (i, (leaf, m)) in leaves.into_iter().zip(msgs.iter()).enumerate() {
            let p = Position(first.0 + i as u64);
            self.credit_rc_slot(from, sc, p, leaf, m.clone(), out)?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // IRMC-RC digest-only fan-in (dedup)
    // ------------------------------------------------------------------

    /// Signed content from the (claimed) primary carrier of a dedup
    /// range. The content is hashed exactly once; the signature is
    /// skipped when this exact range digest already verified (a
    /// retransmission — [`RootCache`]). The verified statement counts as
    /// its sender's vouch, so the carrier participates in the quorum.
    fn on_dedup_send_range(
        &mut self,
        from: usize,
        sc: Subchannel,
        first: Position,
        msgs: Arc<Vec<M>>,
        sig: Signature,
        out: &mut Vec<Action<M>>,
    ) -> Result<(), IrmcError> {
        let Some(&key) = self.cfg.sender_keys.get(from) else {
            return Err(IrmcError::UnknownEndpoint { index: from });
        };
        let count = msgs.len();
        let bytes: usize = msgs.iter().map(|m| m.wire_size()).sum();
        {
            let sub = self.sub(sc);
            if Self::range_delivered(sub, first.0, count as u64) {
                // Late duplicate (below the window, or the range already
                // delivered): drop after the transport MAC — the member
                // slots are NOT re-hashed. Remind the carrier where our
                // window starts in case its view went stale during a
                // partition (it only learns through `Move`s).
                let start = sub.awin.start();
                out.push(Action::Charge(self.cfg.cost.hmac(bytes), "payload_hash"));
                self.reannounce_window(sc, start, from, out);
                return Ok(());
            }
            if first.0 >= sub.awin.end().0 + sub.awin.capacity() {
                return Err(IrmcError::OutOfWindow { sc, p: first });
            }
        }
        // Hash the payloads and rebuild the tree (once per range).
        out.push(Action::Charge(
            self.cfg.cost.hmac(bytes) + self.cfg.cost.merkle(count),
            "range_hash",
        ));
        let leaves: Vec<Digest> = msgs.iter().map(|m| m.digest()).collect();
        let root = merkle_root(&leaves);
        let rd = range_digest(sc, first, count as u32, &root);
        if self.root_cache.contains(&rd) {
            // Same signed statement as before: root comparison suffices.
            out.push(Action::Charge(self.cfg.cost.vouch_verify(), "vouch_verify"));
        } else {
            out.push(Action::Charge(self.cfg.cost.rsa_verify(), "range_verify"));
            if !self.keyring.verify(key, &rd, &sig) {
                return Err(IrmcError::BadSignature { sc, p: first });
            }
            self.root_cache.insert(rd);
        }
        let sub = self.sub(sc);
        sub.vouches.entry(first.0).or_default().entry(from).or_insert((count as u32, root));
        Self::buffer_content(sub, from, first.0, msgs.clone(), root, DedupOutcome::Primary);
        self.try_deliver_dedup(sc, first.0, out);
        if !Self::range_delivered(self.sub(sc), first.0, count as u64) {
            // Not (yet) deliverable as a range — the other senders may
            // have cut their ranges at diverged boundaries, so this exact
            // statement might never quorate. The verified signature also
            // attests every member slot individually: credit them so
            // overlapping foreign statements can converge on per-slot
            // quorums (the legacy `Send` path).
            for (i, (leaf, m)) in leaves.iter().zip(msgs.iter()).enumerate() {
                let _ = self.credit_rc_slot(
                    from,
                    sc,
                    Position(first.0 + i as u64),
                    *leaf,
                    m.clone(),
                    out,
                );
            }
        }
        Ok(())
    }

    /// A digest-only range confirmation from a non-carrier sender
    /// (MAC-authenticated; see [`ChannelMsg::RangeVouch`]).
    fn on_range_vouch(
        &mut self,
        from: usize,
        sc: Subchannel,
        first: Position,
        count: u32,
        root: Digest,
        out: &mut Vec<Action<M>>,
    ) -> Result<(), IrmcError> {
        if self.cfg.variant() != Variant::ReceiverCollect || !self.cfg.dedup() {
            return Err(IrmcError::WrongVariant);
        }
        if count < 2 || count as u64 > self.cfg.capacity {
            return Err(IrmcError::MalformedRange { sc, first, count: count as u64 });
        }
        out.push(Action::Charge(self.cfg.cost.vouch_verify(), "vouch_verify"));
        let sub = self.sub(sc);
        if first.0 + count as u64 <= sub.awin.start().0 {
            // Entirely below the window: late duplicate. Remind the
            // voucher where our window starts in case its view went
            // stale during a partition.
            let start = sub.awin.start();
            self.reannounce_window(sc, start, from, out);
            return Ok(());
        }
        if first.0 >= sub.awin.end().0 + sub.awin.capacity() {
            return Err(IrmcError::OutOfWindow { sc, p: first });
        }
        sub.vouches.entry(first.0).or_default().entry(from).or_insert((count, root));
        self.try_deliver_dedup(sc, first.0, out);
        Ok(())
    }

    /// Reminds a stale sender where this receiver's window starts.
    /// Recast content (a sender retransmitting after a healed partition
    /// that also ate our original `Move`s) lands below the window here;
    /// without the reminder the sender would re-cast forever, because it
    /// only learns of window movement through `Move` messages.
    fn reannounce_window(
        &self,
        sc: Subchannel,
        start: Position,
        to: usize,
        out: &mut Vec<Action<M>>,
    ) {
        out.push(Action::Charge(self.cfg.cost.hmac(32), "window_mac"));
        out.push(Action::ToSender { to, msg: ReceiverMsg::Move { sc, p: start } });
    }

    /// Every in-window slot of `[first, first + count)` already
    /// delivered? (Slots the window moved past count as handled.) With
    /// diverged range boundaries, per-slot crediting can deliver a
    /// *prefix* of a range, so "is slot `first` ready" is not a valid
    /// proxy for "is this range done".
    fn range_delivered(sub: &ReceiverSub<M>, first: u64, count: u64) -> bool {
        let lo = first.max(sub.awin.start().0);
        let hi = first + count;
        hi <= lo || sub.ready.range(lo..hi).count() == (hi - lo) as usize
    }

    /// The statement `(count, root)` vouched for range `first` by more
    /// than `fs` distinct senders, if any (at most one can reach the
    /// quorum: statements differ ⇒ senders differ).
    fn quorate_statement(sub: &ReceiverSub<M>, fs: usize, first: u64) -> Option<(u32, Digest)> {
        let stmts = sub.vouches.get(&first)?;
        stmts
            .values()
            .find(|&&(c, r)| stmts.values().filter(|&&(c2, r2)| c2 == c && r2 == r).count() > fs)
            .copied()
    }

    /// Buffers one content candidate per sender (a faulty sender can only
    /// ever replace its own slot, never evict honest content).
    fn buffer_content(
        sub: &mut ReceiverSub<M>,
        from: usize,
        first: u64,
        msgs: Arc<Vec<M>>,
        root: Digest,
        outcome: DedupOutcome,
    ) {
        let candidates = sub.pending_content.entry(first).or_default();
        match candidates.iter_mut().find(|c| c.from == from) {
            Some(mine) => {
                mine.msgs = msgs;
                mine.root = root;
                mine.outcome = outcome;
            }
            None => candidates.push(PendingContent { from, msgs, root, outcome }),
        }
    }

    /// Delivers range `first` once a vouch quorum AND a content copy
    /// hashing to the quorate root are both present (first arrival wins).
    /// A quorum without content arms the carrier-supervision timer.
    fn try_deliver_dedup(&mut self, sc: Subchannel, first: u64, out: &mut Vec<Action<M>>) {
        let fs = self.cfg.fs;
        let timeout = self.cfg.refetch_delay;
        let Some(sub) = self.subs.get_mut(&sc) else {
            return;
        };
        let span =
            sub.vouches.get(&first).into_iter().flat_map(|s| s.values()).map(|&(c, _)| c).max();
        if Self::range_delivered(sub, first, span.unwrap_or(0) as u64) {
            return;
        }
        let Some((count, root)) = Self::quorate_statement(sub, fs, first) else {
            // Vouched but not quorate: the senders may have cut their
            // ranges at diverged boundaries (replica-local back-pressure),
            // in which case no statement ever reaches fs + 1. Supervise:
            // the timer refetches each voucher's own copy, and matching
            // copies converge on per-slot quorums (`credit_rc_slot`).
            if !sub.timer_armed {
                sub.timer_armed = true;
                out.push(Action::SetTimer { token: sc, delay: timeout });
            }
            return;
        };
        let matched = sub.pending_content.get(&first).and_then(|cands| {
            cands
                .iter()
                .find(|c| c.root == root && c.msgs.len() == count as usize)
                .map(|c| (c.from, c.msgs.clone(), c.outcome))
        });
        match matched {
            Some((carrier, msgs, outcome)) => {
                sub.pending_content.remove(&first);
                sub.fetch_cursor.remove(&first);
                self.deliver_range(sc, first, &msgs, carrier, outcome, out);
            }
            None if !sub.timer_armed => {
                // fs + 1 senders confirmed the range but nobody's content
                // arrived yet: supervise the carrier, refetch on expiry.
                sub.timer_armed = true;
                out.push(Action::SetTimer { token: sc, delay: timeout });
            }
            None => {}
        }
    }

    /// Books verified content from `from` for slot `(sc, p)` and delivers
    /// once `fs + 1` senders vouch for identical content.
    fn credit_rc_slot(
        &mut self,
        from: usize,
        sc: Subchannel,
        p: Position,
        digest: Digest,
        msg: M,
        out: &mut Vec<Action<M>>,
    ) -> Result<(), IrmcError> {
        let fs = self.cfg.fs;
        let sub = self.sub(sc);
        if sub.awin.is_below(p) {
            // Below the window: a late duplicate, normal under
            // retransmission. Remind the sender where our window starts
            // in case its view of it went stale during a partition.
            let start = sub.awin.start();
            self.reannounce_window(sc, start, from, out);
            return Ok(());
        }
        if p.0 >= sub.awin.end().0 + sub.awin.capacity() {
            // Absurdly far above the window (memory guard; correct
            // senders are window-limited anyway).
            return Err(IrmcError::OutOfWindow { sc, p });
        }
        let slot_map = sub.rc_slots.entry(p.0).or_default();
        slot_map.entry(from).or_insert((digest, msg));
        // Quorum: fs + 1 senders with identical content. The just-booked
        // entry guarantees at least one value carries `digest`, so the
        // `find` below cannot miss — but delivery is driven off it rather
        // than an assertion, keeping the path total.
        let quorate = slot_map.values().filter(|(d, _)| *d == digest).count() > fs;
        if quorate && !sub.ready.contains_key(&p.0) {
            let found = slot_map.values().find(|(d, _)| *d == digest).map(|(_, m)| m.clone());
            if let Some(m) = found {
                sub.ready.insert(p.0, (m, from, DedupOutcome::Replicated));
                if sub.announced.insert(p.0) {
                    out.push(Action::Ready { sc, p });
                }
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // IRMC-SC
    // ------------------------------------------------------------------

    fn on_certificate(
        &mut self,
        from: usize,
        sc: Subchannel,
        p: Position,
        msg: Arc<M>,
        shares: Vec<Signature>,
        out: &mut Vec<Action<M>>,
    ) -> Result<(), IrmcError> {
        if self.cfg.variant() != Variant::SenderCollect {
            return Err(IrmcError::WrongVariant);
        }
        // Verify transport MAC + every contained share.
        out.push(Action::Charge(
            self.cfg.cost.hmac(msg.wire_size()) + self.cfg.cost.rsa_verify() * shares.len() as u64,
            "cert_verify",
        ));
        let digest = msg.digest();
        let slot = slot_digest(sc, p, &digest);
        if !self.valid_share_quorum(&shares, &slot) {
            return Err(IrmcError::BadSignature { sc, p });
        }
        let sub = self.sub(sc);
        if sub.awin.is_below(p) {
            return Ok(()); // Late duplicate; normal under retransmission.
        }
        if p.0 >= sub.awin.end().0 + sub.awin.capacity() {
            return Err(IrmcError::OutOfWindow { sc, p });
        }
        let m = (*msg).clone();
        let entry = (m, from, DedupOutcome::Replicated);
        if sub.ready.insert(p.0, entry).is_none() && sub.announced.insert(p.0) {
            out.push(Action::Ready { sc, p });
        }
        Ok(())
    }

    /// Counts `fs + 1` valid shares from distinct senders over `statement`.
    fn valid_share_quorum(&self, shares: &[Signature], statement: &Digest) -> bool {
        let mut signers = BTreeSet::new();
        let valid = shares
            .iter()
            .filter(|sig| {
                let idx = self.cfg.sender_keys.iter().position(|k| *k == sig.signer);
                match idx {
                    Some(i) if signers.insert(i) => self.keyring.verify(sig.signer, statement, sig),
                    _ => false,
                }
            })
            .count();
        valid > self.cfg.fs
    }

    /// Raw range content without proof. IRMC-SC: early-shipped content
    /// (§A.9 overlap) — hash it, remember it, but deliver **nothing**
    /// until a valid certificate covers its root. IRMC-RC dedup: a
    /// voucher's (re)shipped copy — hash it once and deliver iff it
    /// matches the vouch quorum's root.
    fn on_range_content(
        &mut self,
        from: usize,
        sc: Subchannel,
        first: Position,
        msgs: Arc<Vec<M>>,
        out: &mut Vec<Action<M>>,
    ) -> Result<(), IrmcError> {
        let dedup = self.cfg.variant() == Variant::ReceiverCollect && self.cfg.dedup();
        if self.cfg.variant() != Variant::SenderCollect && !dedup {
            return Err(IrmcError::WrongVariant);
        }
        let count = msgs.len();
        if count < 2 || count as u64 > self.cfg.capacity {
            return Err(IrmcError::MalformedRange { sc, first, count: count as u64 });
        }
        let bytes: usize = msgs.iter().map(|m| m.wire_size()).sum();
        if dedup {
            let sub = self.sub(sc);
            if Self::range_delivered(sub, first.0, count as u64) {
                // Late duplicate or already-delivered range: drop after
                // the transport MAC, members are NOT re-hashed.
                out.push(Action::Charge(self.cfg.cost.hmac(bytes), "payload_hash"));
                return Ok(());
            }
            if first.0 >= sub.awin.end().0 + sub.awin.capacity() {
                return Err(IrmcError::OutOfWindow { sc, p: first });
            }
        }
        // Transport MAC + payload hashing + tree rebuild; no signature.
        out.push(Action::Charge(
            self.cfg.cost.hmac(bytes) + self.cfg.cost.merkle(count),
            "range_hash",
        ));
        let leaves: Vec<Digest> = msgs.iter().map(|m| m.digest()).collect();
        let root = merkle_root(&leaves);
        if dedup {
            let fs = self.cfg.fs;
            let sub = self.sub(sc);
            if let Some((qc, qroot)) = Self::quorate_statement(sub, fs, first.0) {
                if qc as usize != count || qroot != root {
                    // The shipping sender contradicts what fs+1 senders
                    // vouched: it is faulty. Keep waiting/refetching.
                    return Err(IrmcError::VouchMismatch { sc, first });
                }
                sub.pending_content.remove(&first.0);
                sub.fetch_cursor.remove(&first.0);
                self.deliver_range(sc, first.0, &msgs, from, DedupOutcome::Refetched, out);
                return Ok(());
            }
            // No quorum yet: content raced ahead of the vouches, or the
            // senders cut their ranges at diverged boundaries and no
            // statement will ever quorate.
            let own = sub.vouches.get(&first.0).and_then(|stmts| stmts.get(&from)).copied();
            Self::buffer_content(sub, from, first.0, msgs.clone(), root, DedupOutcome::Refetched);
            if own == Some((count as u32, root)) {
                // The copy matches `from`'s own vouched statement: it is a
                // per-slot attestation by `from`, exactly like a legacy
                // `Send` — credit each slot so overlapping statements
                // converge on per-slot quorums despite diverged cuts.
                for (i, (leaf, m)) in leaves.iter().zip(msgs.iter()).enumerate() {
                    let _ = self.credit_rc_slot(
                        from,
                        sc,
                        Position(first.0 + i as u64),
                        *leaf,
                        m.clone(),
                        out,
                    );
                }
            }
            return Ok(());
        }
        let sub = self.sub(sc);
        if first.0 + count as u64 <= sub.awin.start().0 {
            return Ok(()); // Entirely below the window: late duplicate.
        }
        if first.0 >= sub.awin.end().0 + sub.awin.capacity() {
            return Err(IrmcError::OutOfWindow { sc, p: first });
        }
        // A certificate that arrived first unlocks the content now.
        if let Some(certs) = sub.pending_certs.get_mut(&first.0) {
            if let Some(i) = certs.iter().position(|c| *c == (count as u32, root)) {
                certs.remove(i);
                if certs.is_empty() {
                    sub.pending_certs.remove(&first.0);
                }
                self.deliver_range(sc, first.0, &msgs, from, DedupOutcome::Replicated, out);
                return Ok(());
            }
        }
        // Buffer one candidate per *sender*: a faulty collector flooding
        // bogus roots can only ever replace its own slot, never evict
        // honest content.
        Self::buffer_content(sub, from, first.0, msgs, root, DedupOutcome::Replicated);
        Ok(())
    }

    /// Shares-only range certificate: one verification per share (at most
    /// `fs + 1`) certifies the **whole** range.
    fn on_range_certificate(
        &mut self,
        sc: Subchannel,
        first: Position,
        count: u32,
        root: Digest,
        shares: Vec<Signature>,
        out: &mut Vec<Action<M>>,
    ) -> Result<(), IrmcError> {
        if self.cfg.variant() != Variant::SenderCollect {
            return Err(IrmcError::WrongVariant);
        }
        if count < 2 || count as u64 > self.cfg.capacity {
            return Err(IrmcError::MalformedRange { sc, first, count: count as u64 });
        }
        out.push(Action::Charge(
            self.cfg.cost.hmac(32) + self.cfg.cost.rsa_verify() * shares.len() as u64,
            "cert_verify",
        ));
        let rd = range_digest(sc, first, count, &root);
        if !self.valid_share_quorum(&shares, &rd) {
            return Err(IrmcError::BadSignature { sc, p: first });
        }
        let n_senders = self.cfg.n_senders;
        let sub = self.sub(sc);
        if first.0 + count as u64 <= sub.awin.start().0 {
            return Ok(()); // Entirely below the window: late duplicate.
        }
        if first.0 >= sub.awin.end().0 + sub.awin.capacity() {
            return Err(IrmcError::OutOfWindow { sc, p: first });
        }
        // Certified: deliver the matching buffered content, or remember
        // the certificate until the content arrives (reordered links).
        let matched = sub.pending_content.get(&first.0).and_then(|cands| {
            cands
                .iter()
                .find(|c| c.root == root && c.msgs.len() == count as usize)
                .map(|c| (c.from, c.msgs.clone()))
        });
        match matched {
            Some((shipper, msgs)) => {
                sub.pending_content.remove(&first.0);
                self.deliver_range(sc, first.0, &msgs, shipper, DedupOutcome::Replicated, out);
            }
            None => {
                // Keep every distinct certified statement (diverged
                // boundaries may certify several lengths for one start),
                // bounded by the sender-group size.
                let certs = sub.pending_certs.entry(first.0).or_default();
                if !certs.contains(&(count, root)) && certs.len() < n_senders {
                    certs.push((count, root));
                }
            }
        }
        Ok(())
    }

    /// Delivers every slot of a certified (or vouch-quorate) range that
    /// is still in-window, tagging each with the shipping sender and the
    /// dedup provenance.
    fn deliver_range(
        &mut self,
        sc: Subchannel,
        first: u64,
        msgs: &[M],
        carrier: usize,
        outcome: DedupOutcome,
        out: &mut Vec<Action<M>>,
    ) {
        let sub = self.sub(sc);
        let start = sub.awin.start().0;
        for (i, m) in msgs.iter().enumerate() {
            let p = first + i as u64;
            if p < start {
                continue;
            }
            let entry = (m.clone(), carrier, outcome);
            if sub.ready.insert(p, entry).is_none() && sub.announced.insert(p) {
                out.push(Action::Ready { sc, p: Position(p) });
            }
        }
    }

    fn on_progress(
        &mut self,
        from: usize,
        positions: Vec<(Subchannel, Position)>,
        out: &mut Vec<Action<M>>,
    ) -> Result<(), IrmcError> {
        if self.cfg.variant() != Variant::SenderCollect {
            return Err(IrmcError::WrongVariant);
        }
        out.push(Action::Charge(self.cfg.cost.hmac(positions.len() * 16), "progress_mac"));
        for (sc, p) in positions {
            let fs = self.cfg.fs;
            let timeout = self.cfg.collector_timeout;
            let sub = self.sub(sc);
            match sub.progress.get_mut(from) {
                Some(prev) if p > *prev => *prev = p,
                Some(_) => {}
                None => return Err(IrmcError::UnknownEndpoint { index: from }),
            }
            // fs+1-highest claim, selected on the reused scratch buffer.
            sub.scratch.clear();
            sub.scratch.extend_from_slice(&sub.progress);
            let (_, nth, _) = sub.scratch.select_nth_unstable_by(fs, |a, b| b.cmp(a));
            sub.merged_progress = *nth;
            // Missing certificates up to the merged progress?
            let missing = Self::first_missing(sub);
            if missing.is_some() && !sub.timer_armed {
                sub.timer_armed = true;
                out.push(Action::SetTimer { token: sc, delay: timeout });
            }
        }
        Ok(())
    }

    fn on_sender_move(
        &mut self,
        from: usize,
        sc: Subchannel,
        p: Position,
        out: &mut Vec<Action<M>>,
    ) -> Result<(), IrmcError> {
        out.push(Action::Charge(self.cfg.cost.hmac(32), "window_mac"));
        let fs = self.cfg.fs;
        let sub = self.sub(sc);
        match sub.sender_moves.get_mut(from) {
            Some(prev) if p > *prev => *prev = p,
            Some(_) => return Ok(()),
            None => return Err(IrmcError::UnknownEndpoint { index: from }),
        }
        // fs+1-highest sender request: at least one correct sender asked
        // for this shift (IRMC-Liveness III). Selection on the reused
        // scratch buffer instead of clone + full sort.
        sub.scratch.clear();
        sub.scratch.extend_from_slice(&sub.sender_moves);
        let (_, nth, _) = sub.scratch.select_nth_unstable_by(fs, |a, b| b.cmp(a));
        let nw = *nth;
        if nw > sub.awin.start() {
            self.move_window(sc, nw, out);
        }
        Ok(())
    }

    /// First position in `[window start, merged progress]` without a
    /// certified message, if any. Resumes from the cached gap-free cursor
    /// instead of rescanning from the window start.
    fn first_missing(sub: &mut ReceiverSub<M>) -> Option<Position> {
        let lo = sub.missing_cursor.max(sub.awin.start().0);
        let hi = sub.merged_progress.0;
        let mut p = lo;
        while p <= hi && sub.ready.contains_key(&p) {
            p += 1;
        }
        sub.missing_cursor = p;
        (p <= hi).then_some(Position(p))
    }

    /// Handles the supervision timer for subchannel `token`: collector
    /// supervision for IRMC-SC (Fig 20 L30-35), carrier supervision for
    /// RC dedup.
    ///
    /// `Err(CarrierTimeout)` reports that a vouch-quorate range's content
    /// never arrived and a refetch was issued — informational (the
    /// protocol recovers on its own), carrying the first stalled range.
    pub fn on_timer(
        &mut self,
        token: u64,
        _now: SimTime,
        out: &mut Vec<Action<M>>,
    ) -> Result<(), IrmcError> {
        match self.cfg.variant() {
            Variant::SenderCollect => {
                self.on_sc_timer(token, out);
                Ok(())
            }
            Variant::ReceiverCollect if self.cfg.dedup() => self.on_dedup_timer(token, out),
            Variant::ReceiverCollect => Ok(()),
        }
    }

    /// IRMC-SC collector supervision (Fig 20 L30-35).
    fn on_sc_timer(&mut self, token: u64, out: &mut Vec<Action<M>>) {
        let sc = token;
        let n_senders = self.cfg.n_senders;
        let timeout = self.cfg.collector_timeout;
        let Some(sub) = self.subs.get_mut(&sc) else {
            return;
        };
        sub.timer_armed = false;
        if Self::first_missing(sub).is_none() {
            return;
        }
        // The collector failed to provide certificates that fs+1 senders
        // claim exist: switch to the next sender.
        sub.collector = (sub.collector + 1) % n_senders;
        let new_collector = sub.collector;
        sub.timer_armed = true;
        out.push(Action::Charge(self.cfg.cost.hmac(32), "select_mac"));
        for s in 0..n_senders {
            out.push(Action::ToSender {
                to: s,
                msg: ReceiverMsg::Select { sc, collector: new_collector },
            });
        }
        out.push(Action::SetTimer { token: sc, delay: timeout });
    }

    /// RC dedup carrier supervision: for every vouch-quorate range whose
    /// content still has not arrived, ask the next voucher (round-robin)
    /// to ship it, then re-arm.
    fn on_dedup_timer(&mut self, token: u64, out: &mut Vec<Action<M>>) -> Result<(), IrmcError> {
        let sc = token;
        let fs = self.cfg.fs;
        let timeout = self.cfg.refetch_delay;
        let Some(sub) = self.subs.get_mut(&sc) else {
            return Ok(());
        };
        sub.timer_armed = false;
        let firsts: Vec<u64> = sub.vouches.keys().copied().collect();
        let mut fetched: Vec<(u64, u32, usize)> = Vec::new();
        for first in firsts {
            let span =
                sub.vouches.get(&first).into_iter().flat_map(|s| s.values()).map(|&(c, _)| c).max();
            if Self::range_delivered(sub, first, span.unwrap_or(0) as u64) {
                continue; // Delivered while the timer was pending.
            }
            // With a quorate statement, rotate through its vouchers —
            // each retains the content, and any one copy completes the
            // range. Without one (boundaries diverged between senders),
            // ask *every* voucher for its own statement at once: a copy
            // matching its sender's vouch credits that sender per slot,
            // and fs + 1 overlapping copies are needed before the slots
            // converge on per-slot quorums, so serializing the fetches
            // would only multiply the stall by the timer period.
            match Self::quorate_statement(sub, fs, first) {
                Some((count, root)) => {
                    let vouchers: Vec<usize> = sub
                        .vouches
                        .get(&first)
                        .map(|stmts| {
                            stmts
                                .iter()
                                .filter(|(_, &(c, r))| c == count && r == root)
                                .map(|(&s, _)| s)
                                .collect()
                        })
                        .unwrap_or_default();
                    if vouchers.is_empty() {
                        continue;
                    }
                    let cursor = sub.fetch_cursor.entry(first).or_insert(0);
                    let Some(&target) = vouchers.get(*cursor % vouchers.len()) else {
                        continue;
                    };
                    *cursor += 1;
                    fetched.push((first, count, target));
                }
                None => {
                    for (&s, &(c, _)) in sub.vouches.get(&first).into_iter().flatten() {
                        fetched.push((first, c, s));
                    }
                }
            }
        }
        let Some(&(stalled_first, _, _)) = fetched.first() else {
            return Ok(()); // All quiet: let the timer lapse.
        };
        out.push(Action::Charge(self.cfg.cost.hmac(32) * fetched.len() as u64, "refetch"));
        for &(first, count, target) in &fetched {
            out.push(Action::ToSender {
                to: target,
                msg: ReceiverMsg::FetchRange { sc, first: Position(first), count },
            });
        }
        if let Some(sub) = self.subs.get_mut(&sc) {
            sub.timer_armed = true;
        }
        out.push(Action::SetTimer { token: sc, delay: timeout });
        Err(IrmcError::CarrierTimeout { sc, first: Position(stalled_first) })
    }

    /// The collector this endpoint currently expects to serve `sc`.
    pub fn collector(&self, sc: Subchannel) -> usize {
        self.subs.get(&sc).map(|s| s.collector).unwrap_or(self.me % self.cfg.n_senders)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sender::SenderEndpoint;
    use crate::tests_support::Blob;
    use spider_crypto::CostModel;
    use spider_crypto::Digestible as _;

    fn cfg(variant: Variant) -> IrmcConfig {
        IrmcConfig::new(variant, 3, 1, 3, 1, 8).with_cost(CostModel::zero())
    }

    fn rc_receiver() -> ReceiverEndpoint<Blob> {
        ReceiverEndpoint::new(cfg(Variant::ReceiverCollect), 0, Keyring::new(5))
    }

    /// Produces the signed `Send` a correct sender would emit.
    fn send_from(idx: usize, sc: Subchannel, p: Position, m: &Blob) -> ChannelMsg<Blob> {
        let mut s: SenderEndpoint<Blob> =
            SenderEndpoint::new(cfg(Variant::ReceiverCollect), idx, Keyring::new(5));
        let mut out = Vec::new();
        s.send_batch(sc, p, vec![m.clone()], &mut out);
        out.into_iter()
            .find_map(|a| match a {
                Action::ToReceiver { to: 0, msg } => Some(msg),
                _ => None,
            })
            .expect("send emitted")
    }

    /// Produces the signed `SendRange` a correct sender would emit.
    fn range_from(
        idx: usize,
        sc: Subchannel,
        first: Position,
        msgs: Vec<Blob>,
    ) -> ChannelMsg<Blob> {
        let mut s: SenderEndpoint<Blob> =
            SenderEndpoint::new(cfg(Variant::ReceiverCollect), idx, Keyring::new(5));
        let mut out = Vec::new();
        s.send_batch(sc, first, msgs, &mut out);
        out.into_iter()
            .find_map(|a| match a {
                Action::ToReceiver { to: 0, msg: m @ ChannelMsg::SendRange { .. } } => Some(m),
                _ => None,
            })
            .expect("range emitted")
    }

    fn blobs(first: u64, n: u64) -> Vec<Blob> {
        (first..first + n).map(|i| Blob::new(format!("m{i}").as_bytes())).collect()
    }

    #[test]
    fn rc_delivers_after_fs_plus_one_matching_sends() {
        let mut r = rc_receiver();
        let m = Blob::new(b"value");
        let mut out = Vec::new();
        let _ = r.on_sender_message(SimTime::ZERO, 0, send_from(0, 3, Position(1), &m), &mut out);
        assert_eq!(
            r.try_receive(3, Position(1)),
            ReceiveResult::Pending,
            "one sender is not enough"
        );
        let _ = r.on_sender_message(SimTime::ZERO, 1, send_from(1, 3, Position(1), &m), &mut out);
        assert!(out.iter().any(|a| matches!(a, Action::Ready { sc: 3, p } if *p == Position(1))));
        assert_eq!(r.try_receive(3, Position(1)).into_payload(), Some(m));
    }

    #[test]
    fn rc_conflicting_contents_never_deliver() {
        let mut r = rc_receiver();
        let mut out = Vec::new();
        let _ = r.on_sender_message(
            SimTime::ZERO,
            0,
            send_from(0, 0, Position(1), &Blob::new(b"a")),
            &mut out,
        );
        let _ = r.on_sender_message(
            SimTime::ZERO,
            1,
            send_from(1, 0, Position(1), &Blob::new(b"b")),
            &mut out,
        );
        let _ = r.on_sender_message(
            SimTime::ZERO,
            2,
            send_from(2, 0, Position(1), &Blob::new(b"c")),
            &mut out,
        );
        assert_eq!(r.try_receive(0, Position(1)), ReceiveResult::Pending);
        assert!(!out.iter().any(|a| matches!(a, Action::Ready { .. })));
    }

    #[test]
    fn rc_duplicate_sender_does_not_count_twice() {
        let mut r = rc_receiver();
        let m = Blob::new(b"v");
        let mut out = Vec::new();
        let msg = send_from(0, 0, Position(1), &m);
        let _ = r.on_sender_message(SimTime::ZERO, 0, msg.clone(), &mut out);
        let _ = r.on_sender_message(SimTime::ZERO, 0, msg, &mut out);
        assert_eq!(r.try_receive(0, Position(1)), ReceiveResult::Pending);
    }

    #[test]
    fn rc_forged_signature_is_discarded() {
        let mut r = rc_receiver();
        let m = Blob::new(b"v");
        // Sender 2's message relabeled as coming from sender 0: signature
        // check must fail (claims sender 0's key but is signed by 2).
        let msg = send_from(2, 0, Position(1), &m);
        let mut out = Vec::new();
        let _ = r.on_sender_message(SimTime::ZERO, 0, msg, &mut out);
        let msg1 = send_from(1, 0, Position(1), &m);
        let _ = r.on_sender_message(SimTime::ZERO, 1, msg1, &mut out);
        assert_eq!(
            r.try_receive(0, Position(1)),
            ReceiveResult::Pending,
            "forged copy must not count toward the quorum"
        );
    }

    #[test]
    fn below_window_reports_too_old() {
        let mut r = rc_receiver();
        let mut out = Vec::new();
        r.move_window(0, Position(5), &mut out);
        assert_eq!(r.try_receive(0, Position(2)), ReceiveResult::TooOld(Position(5)));
        // Moves notify every sender.
        let moves = out
            .iter()
            .filter(|a| matches!(a, Action::ToSender { msg: ReceiverMsg::Move { .. }, .. }))
            .count();
        assert_eq!(moves, 3);
    }

    #[test]
    fn sender_moves_shift_window_at_fs_plus_one() {
        let mut r = rc_receiver();
        let mut out = Vec::new();
        let _ = r.on_sender_message(
            SimTime::ZERO,
            0,
            ChannelMsg::Move { sc: 0, p: Position(9) },
            &mut out,
        );
        assert_eq!(r.window(0).start(), Position(1), "one sender cannot move the window");
        let _ = r.on_sender_message(
            SimTime::ZERO,
            1,
            ChannelMsg::Move { sc: 0, p: Position(7) },
            &mut out,
        );
        // fs+1 = 2-highest of [9, 7, 0] = 7.
        assert_eq!(r.window(0).start(), Position(7));
        assert!(out
            .iter()
            .any(|a| matches!(a, Action::WindowMoved { start, .. } if *start == Position(7))));
    }

    #[test]
    fn sc_certificate_with_too_few_valid_shares_rejected() {
        let ring = Keyring::new(5);
        let mut r: ReceiverEndpoint<Blob> =
            ReceiverEndpoint::new(cfg(Variant::SenderCollect), 0, ring.clone());
        let m = Blob::new(b"v");
        let d = m.digest();
        let slot = slot_digest(0, Position(1), &d);
        let good = ring.sign(spider_crypto::KeyId(1000), &slot);
        // Second share is over different content — invalid for this slot.
        let other = slot_digest(0, Position(2), &d);
        let bad = ring.sign(spider_crypto::KeyId(1001), &other);
        let mut out = Vec::new();
        let _ = r.on_sender_message(
            SimTime::ZERO,
            0,
            ChannelMsg::Certificate {
                sc: 0,
                p: Position(1),
                msg: Arc::new(m.clone()),
                shares: vec![good, bad],
            },
            &mut out,
        );
        assert_eq!(r.try_receive(0, Position(1)), ReceiveResult::Pending);
        // Duplicate shares from one sender are no better.
        let _ = r.on_sender_message(
            SimTime::ZERO,
            0,
            ChannelMsg::Certificate {
                sc: 0,
                p: Position(1),
                msg: Arc::new(m.clone()),
                shares: vec![good, good],
            },
            &mut out,
        );
        assert_eq!(r.try_receive(0, Position(1)), ReceiveResult::Pending);
    }

    #[test]
    fn sc_progress_without_certificates_arms_timer_and_switches_collector() {
        let ring = Keyring::new(5);
        let mut r: ReceiverEndpoint<Blob> =
            ReceiverEndpoint::new(cfg(Variant::SenderCollect), 0, ring);
        assert_eq!(r.collector(0), 0);
        let mut out = Vec::new();
        // fs + 1 = 2 senders claim position 4 is certified.
        for s in [1, 2] {
            let _ = r.on_sender_message(
                SimTime::ZERO,
                s,
                ChannelMsg::Progress { positions: vec![(0, Position(4))] },
                &mut out,
            );
        }
        assert!(out.iter().any(|a| matches!(a, Action::SetTimer { token: 0, .. })));
        // Timer fires; nothing arrived from collector 0 -> switch to 1.
        out.clear();
        let _ = r.on_timer(0, SimTime::from_millis(500), &mut out);
        assert_eq!(r.collector(0), 1);
        let selects = out
            .iter()
            .filter(|a| {
                matches!(a, Action::ToSender { msg: ReceiverMsg::Select { collector: 1, .. }, .. })
            })
            .count();
        assert_eq!(selects, 3, "announced to every sender");
    }

    // ------------------------------------------------------------------
    // Range verification
    // ------------------------------------------------------------------

    #[test]
    fn rc_range_delivers_after_fs_plus_one_matching_ranges() {
        let mut r = rc_receiver();
        let msgs = blobs(1, 4);
        let mut out = Vec::new();
        let _ = r.on_sender_message(
            SimTime::ZERO,
            0,
            range_from(0, 0, Position(1), msgs.clone()),
            &mut out,
        );
        for p in 1..=4u64 {
            assert_eq!(r.try_receive(0, Position(p)), ReceiveResult::Pending, "one sender only");
        }
        let _ = r.on_sender_message(
            SimTime::ZERO,
            1,
            range_from(1, 0, Position(1), msgs.clone()),
            &mut out,
        );
        for (i, m) in msgs.iter().enumerate() {
            assert_eq!(
                r.try_receive(0, Position(1 + i as u64)).into_payload(),
                Some(m.clone()),
                "slot {i}"
            );
        }
    }

    #[test]
    fn rc_range_and_single_sends_share_slot_quorums() {
        // One sender ships a range, another ships a matching single slot:
        // the per-slot quorum must combine them (mixed configurations).
        let mut r = rc_receiver();
        let msgs = blobs(1, 3);
        let mut out = Vec::new();
        let _ = r.on_sender_message(
            SimTime::ZERO,
            0,
            range_from(0, 0, Position(1), msgs.clone()),
            &mut out,
        );
        let _ =
            r.on_sender_message(SimTime::ZERO, 1, send_from(1, 0, Position(2), &msgs[1]), &mut out);
        assert_eq!(r.try_receive(0, Position(2)).into_payload(), Some(msgs[1].clone()));
        assert_eq!(r.try_receive(0, Position(1)), ReceiveResult::Pending);
    }

    #[test]
    fn rc_tampered_range_member_rejects_the_whole_range() {
        let mut r = rc_receiver();
        let msgs = blobs(1, 4);
        let mut out = Vec::new();
        // Honest range from sender 0.
        let _ = r.on_sender_message(
            SimTime::ZERO,
            0,
            range_from(0, 0, Position(1), msgs.clone()),
            &mut out,
        );
        // Sender 1's range with slot 2 tampered after signing.
        let ChannelMsg::SendRange { sc, first, msgs: signed, sig } =
            range_from(1, 0, Position(1), msgs.clone())
        else {
            panic!("range expected")
        };
        let mut tampered: Vec<Blob> = (*signed).clone();
        tampered[2] = Blob::new(b"evil");
        let _ = r.on_sender_message(
            SimTime::ZERO,
            1,
            ChannelMsg::SendRange { sc, first, msgs: Arc::new(tampered), sig },
            &mut out,
        );
        for p in 1..=4u64 {
            assert_eq!(
                r.try_receive(0, Position(p)),
                ReceiveResult::Pending,
                "tampering one member must reject every slot of the range (slot {p})"
            );
        }
    }

    fn sc_pair() -> (SenderEndpoint<Blob>, SenderEndpoint<Blob>, ReceiverEndpoint<Blob>) {
        let ring = Keyring::new(5);
        let c = cfg(Variant::SenderCollect);
        (
            SenderEndpoint::new(c.clone(), 0, ring.clone()),
            SenderEndpoint::new(c.clone(), 1, ring.clone()),
            ReceiverEndpoint::new(c, 0, ring),
        )
    }

    #[test]
    fn sc_overlap_content_never_delivers_before_certificate() {
        let (mut s0, mut s1, mut r) = sc_pair();
        let msgs = blobs(1, 4);
        let mut out0 = Vec::new();
        let mut out1 = Vec::new();
        s0.send_batch(0, Position(1), msgs.clone(), &mut out0);
        s1.send_batch(0, Position(1), msgs.clone(), &mut out1);
        // Deliver ONLY the early content (overlap) to the receiver.
        let content = out0
            .iter()
            .find_map(|a| match a {
                Action::ToReceiver { to: 0, msg: m @ ChannelMsg::RangeContent { .. } } => {
                    Some(m.clone())
                }
                _ => None,
            })
            .expect("overlap ships content early");
        let mut rout = Vec::new();
        let _ = r.on_sender_message(SimTime::ZERO, 0, content, &mut rout);
        for p in 1..=4u64 {
            assert_eq!(
                r.try_receive(0, Position(p)),
                ReceiveResult::Pending,
                "uncertified content must never deliver (slot {p})"
            );
        }
        assert!(!rout.iter().any(|a| matches!(a, Action::Ready { .. })));
        // Now complete the certificate on s0 and ship it: delivery unlocks.
        let share = out1
            .iter()
            .find_map(|a| match a {
                Action::ToPeerSender { to: 0, msg } => Some(msg.clone()),
                _ => None,
            })
            .expect("share for s0");
        let mut certs = Vec::new();
        let _ = s0.on_peer_message(1, share, &mut certs);
        let cert = certs
            .iter()
            .find_map(|a| match a {
                Action::ToReceiver { to: 0, msg: m @ ChannelMsg::RangeCertificate { .. } } => {
                    Some(m.clone())
                }
                _ => None,
            })
            .expect("certificate shipped");
        let _ = r.on_sender_message(SimTime::ZERO, 0, cert, &mut rout);
        for (i, m) in msgs.iter().enumerate() {
            assert_eq!(r.try_receive(0, Position(1 + i as u64)).into_payload(), Some(m.clone()));
        }
    }

    #[test]
    fn sc_certificate_before_content_waits_and_then_delivers() {
        let (mut s0, mut s1, mut r) = sc_pair();
        let msgs = blobs(1, 3);
        let mut out0 = Vec::new();
        let mut out1 = Vec::new();
        s0.send_batch(0, Position(1), msgs.clone(), &mut out0);
        s1.send_batch(0, Position(1), msgs.clone(), &mut out1);
        let share = out1
            .iter()
            .find_map(|a| match a {
                Action::ToPeerSender { to: 0, msg } => Some(msg.clone()),
                _ => None,
            })
            .unwrap();
        let mut certs = Vec::new();
        let _ = s0.on_peer_message(1, share, &mut certs);
        let cert = certs
            .iter()
            .find_map(|a| match a {
                Action::ToReceiver { to: 0, msg: m @ ChannelMsg::RangeCertificate { .. } } => {
                    Some(m.clone())
                }
                _ => None,
            })
            .unwrap();
        // Reordered link: the certificate overtakes the content.
        let mut rout = Vec::new();
        let _ = r.on_sender_message(SimTime::ZERO, 0, cert, &mut rout);
        assert_eq!(r.try_receive(0, Position(1)), ReceiveResult::Pending);
        let content = out0
            .iter()
            .find_map(|a| match a {
                Action::ToReceiver { to: 0, msg: m @ ChannelMsg::RangeContent { .. } } => {
                    Some(m.clone())
                }
                _ => None,
            })
            .unwrap();
        let _ = r.on_sender_message(SimTime::ZERO, 0, content, &mut rout);
        for (i, m) in msgs.iter().enumerate() {
            assert_eq!(r.try_receive(0, Position(1 + i as u64)).into_payload(), Some(m.clone()));
        }
    }

    #[test]
    fn sc_bogus_content_flood_cannot_evict_honest_pending_content() {
        // A faulty sender ships many bogus RangeContent candidates for the
        // same range before the honest collector's content arrives; the
        // honest content must still unlock when its certificate lands.
        let (mut s0, mut s1, mut r) = sc_pair();
        let msgs = blobs(1, 4);
        let mut out0 = Vec::new();
        let mut out1 = Vec::new();
        s0.send_batch(0, Position(1), msgs.clone(), &mut out0);
        s1.send_batch(0, Position(1), msgs.clone(), &mut out1);
        let mut rout = Vec::new();
        // Faulty sender 2 floods distinct bogus contents for first=1.
        for k in 0..8u64 {
            let _ = r.on_sender_message(
                SimTime::ZERO,
                2,
                ChannelMsg::RangeContent {
                    sc: 0,
                    first: Position(1),
                    msgs: Arc::new(blobs(100 + 10 * k, 4)),
                },
                &mut rout,
            );
        }
        // Honest content arrives afterwards…
        let content = out0
            .iter()
            .find_map(|a| match a {
                Action::ToReceiver { to: 0, msg: m @ ChannelMsg::RangeContent { .. } } => {
                    Some(m.clone())
                }
                _ => None,
            })
            .expect("overlap ships content");
        let _ = r.on_sender_message(SimTime::ZERO, 0, content, &mut rout);
        // …and the certificate unlocks it despite the flood.
        let share = out1
            .iter()
            .find_map(|a| match a {
                Action::ToPeerSender { to: 0, msg } => Some(msg.clone()),
                _ => None,
            })
            .unwrap();
        let mut certs = Vec::new();
        let _ = s0.on_peer_message(1, share, &mut certs);
        let cert = certs
            .iter()
            .find_map(|a| match a {
                Action::ToReceiver { to: 0, msg: m @ ChannelMsg::RangeCertificate { .. } } => {
                    Some(m.clone())
                }
                _ => None,
            })
            .unwrap();
        let _ = r.on_sender_message(SimTime::ZERO, 0, cert, &mut rout);
        for (i, m) in msgs.iter().enumerate() {
            assert_eq!(r.try_receive(0, Position(1 + i as u64)).into_payload(), Some(m.clone()));
        }
    }

    #[test]
    fn sc_range_certificate_with_wrong_content_rejected() {
        let (mut s0, mut s1, mut r) = sc_pair();
        let msgs = blobs(1, 3);
        let mut out0 = Vec::new();
        let mut out1 = Vec::new();
        s0.send_batch(0, Position(1), msgs.clone(), &mut out0);
        s1.send_batch(0, Position(1), msgs, &mut out1);
        // A faulty collector ships different content than was certified.
        let mut rout = Vec::new();
        let _ = r.on_sender_message(
            SimTime::ZERO,
            0,
            ChannelMsg::RangeContent { sc: 0, first: Position(1), msgs: Arc::new(blobs(7, 3)) },
            &mut rout,
        );
        let share = out1
            .iter()
            .find_map(|a| match a {
                Action::ToPeerSender { to: 0, msg } => Some(msg.clone()),
                _ => None,
            })
            .unwrap();
        let mut certs = Vec::new();
        let _ = s0.on_peer_message(1, share, &mut certs);
        let cert = certs
            .iter()
            .find_map(|a| match a {
                Action::ToReceiver { to: 0, msg: m @ ChannelMsg::RangeCertificate { .. } } => {
                    Some(m.clone())
                }
                _ => None,
            })
            .unwrap();
        let _ = r.on_sender_message(SimTime::ZERO, 0, cert, &mut rout);
        for p in 1..=3u64 {
            assert_eq!(
                r.try_receive(0, Position(p)),
                ReceiveResult::Pending,
                "mismatching content must not deliver under the certificate"
            );
        }
    }

    // ------------------------------------------------------------------
    // RC digest-only fan-in (dedup)
    // ------------------------------------------------------------------

    use crate::messages::carrier_for;
    use crate::ChannelMode;
    use spider_types::WireSize;

    fn dedup_cfg() -> IrmcConfig {
        IrmcConfig::new(ChannelMode::ReliableCast { dedup: true }, 3, 1, 3, 1, 8)
            .with_cost(CostModel::zero())
    }

    /// Everything sender `idx` ships to receiver 0 for this batch.
    fn dedup_msgs_from(
        c: &IrmcConfig,
        idx: usize,
        sc: Subchannel,
        first: Position,
        msgs: Vec<Blob>,
    ) -> Vec<ChannelMsg<Blob>> {
        let mut s: SenderEndpoint<Blob> = SenderEndpoint::new(c.clone(), idx, Keyring::new(5));
        let mut out = Vec::new();
        s.send_batch(sc, first, msgs, &mut out);
        out.into_iter()
            .filter_map(|a| match a {
                Action::ToReceiver { to: 0, msg } => Some(msg),
                _ => None,
            })
            .collect()
    }

    fn charge_sum(out: &[Action<Blob>]) -> SimTime {
        out.iter()
            .filter_map(|a| match a {
                Action::Charge(t, _) => Some(*t),
                _ => None,
            })
            .fold(SimTime::ZERO, |acc, t| acc + t)
    }

    #[test]
    fn dedup_carrier_content_plus_one_vouch_delivers_primary() {
        let c = dedup_cfg();
        let carrier = carrier_for(0, Position(1), c.n_senders);
        let voucher = (carrier + 1) % c.n_senders;
        let mut r: ReceiverEndpoint<Blob> = ReceiverEndpoint::new(c.clone(), 0, Keyring::new(5));
        let msgs = blobs(1, 4);
        let mut out = Vec::new();
        for m in dedup_msgs_from(&c, carrier, 0, Position(1), msgs.clone()) {
            let _ = r.on_sender_message(SimTime::ZERO, carrier, m, &mut out);
        }
        assert_eq!(
            r.try_receive(0, Position(1)),
            ReceiveResult::Pending,
            "the carrier alone is one statement — not a quorum"
        );
        for m in dedup_msgs_from(&c, voucher, 0, Position(1), msgs.clone()) {
            let _ = r.on_sender_message(SimTime::ZERO, voucher, m, &mut out);
        }
        for (i, m) in msgs.iter().enumerate() {
            let got = r.try_receive(0, Position(1 + i as u64));
            let ReceiveResult::Ready(d) = got else { panic!("slot {i} should deliver") };
            assert_eq!(d.payload, *m, "byte-identical delivery, slot {i}");
            assert_eq!(d.carrier, carrier, "provenance names the carrier");
            assert_eq!(d.dedup, DedupOutcome::Primary);
        }
        assert!(out.iter().any(|a| matches!(a, Action::Ready { sc: 0, p } if *p == Position(1))));
    }

    #[test]
    fn dedup_vouch_order_does_not_matter() {
        // Vouches land before the carrier's content: delivery happens the
        // moment the content arrives, not before.
        let c = dedup_cfg();
        let carrier = carrier_for(0, Position(1), c.n_senders);
        let mut r: ReceiverEndpoint<Blob> = ReceiverEndpoint::new(c.clone(), 0, Keyring::new(5));
        let msgs = blobs(1, 3);
        let mut out = Vec::new();
        for s in 0..c.n_senders {
            if s == carrier {
                continue;
            }
            for m in dedup_msgs_from(&c, s, 0, Position(1), msgs.clone()) {
                let _ = r.on_sender_message(SimTime::ZERO, s, m, &mut out);
            }
        }
        assert_eq!(
            r.try_receive(0, Position(1)),
            ReceiveResult::Pending,
            "vouches alone carry no content"
        );
        for m in dedup_msgs_from(&c, carrier, 0, Position(1), msgs.clone()) {
            let _ = r.on_sender_message(SimTime::ZERO, carrier, m, &mut out);
        }
        assert_eq!(r.try_receive(0, Position(1)).into_payload(), Some(msgs[0].clone()));
    }

    #[test]
    fn dedup_quorum_without_content_arms_timer_and_refetches() {
        let c = dedup_cfg();
        let carrier = carrier_for(0, Position(1), c.n_senders);
        let vouchers: Vec<usize> = (0..c.n_senders).filter(|&s| s != carrier).collect();
        let mut r: ReceiverEndpoint<Blob> = ReceiverEndpoint::new(c.clone(), 0, Keyring::new(5));
        let msgs = blobs(1, 4);
        let mut out = Vec::new();
        for &v in &vouchers {
            for m in dedup_msgs_from(&c, v, 0, Position(1), msgs.clone()) {
                let _ = r.on_sender_message(SimTime::ZERO, v, m, &mut out);
            }
        }
        // fs + 1 = 2 vouches form a quorum with no content: supervise.
        assert!(
            out.iter().any(|a| matches!(a, Action::SetTimer { token: 0, .. })),
            "quorum without content must arm the carrier-supervision timer"
        );
        out.clear();
        let res = r.on_timer(0, SimTime::from_millis(500), &mut out);
        assert_eq!(
            res,
            Err(IrmcError::CarrierTimeout { sc: 0, first: Position(1) }),
            "the stalled range is reported"
        );
        let fetch = out
            .iter()
            .find_map(|a| match a {
                Action::ToSender { to, msg: ReceiverMsg::FetchRange { sc: 0, first, count } } => {
                    Some((*to, *first, *count))
                }
                _ => None,
            })
            .expect("a refetch goes out");
        assert_eq!(fetch.1, Position(1));
        assert_eq!(fetch.2, 4);
        assert!(vouchers.contains(&fetch.0), "refetch targets a voucher");
        assert!(
            out.iter().any(|a| matches!(a, Action::SetTimer { token: 0, .. })),
            "the timer re-arms until the content lands"
        );
        // The voucher answers with raw content: delivered as Refetched.
        let mut out2 = Vec::new();
        let _ = r.on_sender_message(
            SimTime::ZERO,
            fetch.0,
            ChannelMsg::RangeContent { sc: 0, first: Position(1), msgs: Arc::new(msgs.clone()) },
            &mut out2,
        );
        for (i, m) in msgs.iter().enumerate() {
            let ReceiveResult::Ready(d) = r.try_receive(0, Position(1 + i as u64)) else {
                panic!("slot {i} should deliver after the refetch")
            };
            assert_eq!(d.payload, *m);
            assert_eq!(d.carrier, fetch.0);
            assert_eq!(d.dedup, DedupOutcome::Refetched);
        }
        // The next timer expiry finds nothing stalled and stays quiet.
        let mut out3 = Vec::new();
        assert_eq!(r.on_timer(0, SimTime::from_millis(1000), &mut out3), Ok(()));
        assert!(!out3.iter().any(|a| matches!(a, Action::SetTimer { .. })));
    }

    #[test]
    fn dedup_successive_refetches_rotate_vouchers() {
        let c = dedup_cfg();
        let carrier = carrier_for(0, Position(1), c.n_senders);
        let vouchers: Vec<usize> = (0..c.n_senders).filter(|&s| s != carrier).collect();
        let mut r: ReceiverEndpoint<Blob> = ReceiverEndpoint::new(c.clone(), 0, Keyring::new(5));
        let msgs = blobs(1, 4);
        let mut out = Vec::new();
        for &v in &vouchers {
            for m in dedup_msgs_from(&c, v, 0, Position(1), msgs.clone()) {
                let _ = r.on_sender_message(SimTime::ZERO, v, m, &mut out);
            }
        }
        let mut targets = Vec::new();
        for round in 0..2u64 {
            out.clear();
            let _ = r.on_timer(0, SimTime::from_millis(500 * (round + 1)), &mut out);
            targets.extend(out.iter().filter_map(|a| match a {
                Action::ToSender { to, msg: ReceiverMsg::FetchRange { .. } } => Some(*to),
                _ => None,
            }));
        }
        assert_eq!(targets.len(), 2);
        assert_ne!(targets[0], targets[1], "a dead voucher is not re-asked immediately");
    }

    #[test]
    fn dedup_tampered_content_is_rejected_as_vouch_mismatch() {
        let c = dedup_cfg();
        let carrier = carrier_for(0, Position(1), c.n_senders);
        let vouchers: Vec<usize> = (0..c.n_senders).filter(|&s| s != carrier).collect();
        let mut r: ReceiverEndpoint<Blob> = ReceiverEndpoint::new(c.clone(), 0, Keyring::new(5));
        let msgs = blobs(1, 4);
        let mut out = Vec::new();
        for &v in &vouchers {
            for m in dedup_msgs_from(&c, v, 0, Position(1), msgs.clone()) {
                let _ = r.on_sender_message(SimTime::ZERO, v, m, &mut out);
            }
        }
        // A Byzantine sender ships content contradicting the quorum root.
        let res = r.on_sender_message(
            SimTime::ZERO,
            carrier,
            ChannelMsg::RangeContent { sc: 0, first: Position(1), msgs: Arc::new(blobs(50, 4)) },
            &mut out,
        );
        assert_eq!(res, Err(IrmcError::VouchMismatch { sc: 0, first: Position(1) }));
        assert_eq!(r.try_receive(0, Position(1)), ReceiveResult::Pending);
        // The honest copy still delivers afterwards.
        let _ = r.on_sender_message(
            SimTime::ZERO,
            vouchers[0],
            ChannelMsg::RangeContent { sc: 0, first: Position(1), msgs: Arc::new(msgs.clone()) },
            &mut out,
        );
        assert_eq!(r.try_receive(0, Position(1)).into_payload(), Some(msgs[0].clone()));
    }

    #[test]
    fn dedup_retransmitted_send_range_skips_the_second_signature_check() {
        // RootCache: the same signed range arriving twice (retransmission)
        // pays hashing twice but RSA verification only once.
        let c = dedup_cfg().with_cost(CostModel::default());
        let carrier = carrier_for(0, Position(1), c.n_senders);
        let mut r: ReceiverEndpoint<Blob> = ReceiverEndpoint::new(c.clone(), 0, Keyring::new(5));
        let frames = dedup_msgs_from(&c, carrier, 0, Position(1), blobs(1, 4));
        let mut out1 = Vec::new();
        for m in frames.clone() {
            let _ = r.on_sender_message(SimTime::ZERO, carrier, m, &mut out1);
        }
        let mut out2 = Vec::new();
        for m in frames {
            let _ = r.on_sender_message(SimTime::ZERO, carrier, m, &mut out2);
        }
        let (c1, c2) = (charge_sum(&out1), charge_sum(&out2));
        assert_eq!(
            c1 + c.cost.vouch_verify(),
            c2 + c.cost.rsa_verify(),
            "second copy trades the RSA verification for a root comparison"
        );
    }

    #[test]
    fn dedup_late_copy_of_a_delivered_range_is_not_rehashed() {
        let c = dedup_cfg().with_cost(CostModel::default());
        let carrier = carrier_for(0, Position(1), c.n_senders);
        let voucher = (carrier + 1) % c.n_senders;
        let mut r: ReceiverEndpoint<Blob> = ReceiverEndpoint::new(c.clone(), 0, Keyring::new(5));
        let msgs = blobs(1, 4);
        let mut out = Vec::new();
        for (s, frames) in [(carrier, dedup_msgs_from(&c, carrier, 0, Position(1), msgs.clone()))]
            .into_iter()
            .chain([(voucher, dedup_msgs_from(&c, voucher, 0, Position(1), msgs.clone()))])
        {
            for m in frames {
                let _ = r.on_sender_message(SimTime::ZERO, s, m, &mut out);
            }
        }
        assert!(r.try_receive(0, Position(1)).into_payload().is_some(), "delivered");
        // A late duplicate of the carrier's frame: transport MAC plus the
        // MAC of the window re-announcement that reminds the stale sender
        // — no Merkle rebuild, no signature.
        let bytes: usize = msgs.iter().map(|m| m.wire_size()).sum();
        let mut late = Vec::new();
        for m in dedup_msgs_from(&c, carrier, 0, Position(1), msgs.clone()) {
            let _ = r.on_sender_message(SimTime::ZERO, carrier, m, &mut late);
        }
        assert_eq!(
            charge_sum(&late),
            c.cost.hmac(bytes) + c.cost.hmac(32),
            "the hash wall is gone for late copies"
        );
        assert!(
            late.iter().any(|a| matches!(
                a,
                Action::ToSender { to, msg: ReceiverMsg::Move { sc: 0, p: Position(1) } } if *to == carrier
            )),
            "the stale carrier is reminded where the window starts"
        );
    }

    #[test]
    fn dedup_vouch_in_legacy_mode_is_wrong_variant() {
        let mut r = rc_receiver();
        let mut out = Vec::new();
        let res = r.on_sender_message(
            SimTime::ZERO,
            1,
            ChannelMsg::RangeVouch {
                sc: 0,
                first: Position(1),
                count: 4,
                root: Digest::of_bytes(b"x"),
            },
            &mut out,
        );
        assert_eq!(res, Err(IrmcError::WrongVariant));
    }

    #[test]
    fn legacy_delivery_reports_replicated_provenance() {
        let mut r = rc_receiver();
        let m = Blob::new(b"value");
        let mut out = Vec::new();
        let _ = r.on_sender_message(SimTime::ZERO, 0, send_from(0, 0, Position(1), &m), &mut out);
        let _ = r.on_sender_message(SimTime::ZERO, 1, send_from(1, 0, Position(1), &m), &mut out);
        let ReceiveResult::Ready(d) = r.try_receive(0, Position(1)) else { panic!("delivered") };
        assert_eq!(d.dedup, DedupOutcome::Replicated);
        assert_eq!(d.position, Position(1));
    }
}
