//! Inter-regional message channels (IRMC) — §3.2 and appendix §A.8/§A.9.
//!
//! An IRMC forwards messages from a *group* of sender replicas in one
//! region to a *group* of receiver replicas in another. It is the only
//! abstraction Spider uses over wide-area links, and it provides:
//!
//! * **Subchannels** with FIFO semantics and unique positions — distributed
//!   bounded queues (one per client for request channels; a single one for
//!   commit channels).
//! * **BFT send semantics**: a message is delivered only after `fs + 1`
//!   senders submitted identical content for the same subchannel position,
//!   so at least one *correct* sender vouches for it.
//! * **Window-based flow control**: each subchannel has a capacity; windows
//!   move only forward, receivers shift them as they consume (or senders
//!   request shifts), and a receiver that falls behind gets a
//!   [`ReceiveResult::TooOld`] telling it to fetch a checkpoint instead.
//! * **Authentication**: channel-internal messages carry (simulated) RSA
//!   signatures; invalid ones are discarded.
//!
//! Two implementations share one interface, selected by [`ChannelMode`]:
//!
//! * [`ChannelMode::ReliableCast`] (**IRMC-RC**, Fig 18): every sender
//!   submits directly to every receiver; receivers individually collect
//!   `fs + 1` matching submissions. With `dedup: true` the redundant
//!   copies are *digest-only*: a deterministically rotated primary
//!   carrier ships the one signed content copy while the other senders
//!   confirm the range with a MAC-authenticated [`ChannelMsg::RangeVouch`]
//!   — content crosses the wire and gets hashed at most once per range on
//!   the happy path, and a receiver whose carrier stalls refetches the
//!   content from any voucher.
//! * [`ChannelMode::SenderCast`] (**IRMC-SC**, Figs 19–20): senders
//!   exchange signature shares inside their region; one *collector* per
//!   receiver assembles a `Certificate` and ships a single WAN message.
//!   With `overlap: true` (§A.9) the collector ships range content as
//!   soon as it is submitted and follows up with a compact shares-only
//!   certificate.
//!
//! Both variants support **multi-slot range certification**
//! ([`SenderEndpoint::send_batch`]): a contiguous slot run is certified by
//! **one** RSA signature over the Merkle root of the per-slot digests
//! ([`spider_crypto::merkle`]), amortizing the dominant per-slot CPU cost
//! of a loaded commit channel. A range of length 1 degenerates to the
//! legacy per-slot wire messages, so mixed configurations interoperate.
//!
//! Endpoints are sans-IO state machines: methods append [`Action`]s
//! (messages to peers, CPU charges, readiness events, timer requests) to a
//! caller-provided buffer, and the host performs them. Delivered messages
//! come wrapped in a [`Delivery`] carrying provenance: which sender's copy
//! was delivered and whether dedup was involved ([`DedupOutcome`]).
//!
//! # Examples
//!
//! Passing a batch across a 4-sender/3-receiver dedup channel (the shape
//! of a commit channel with `fa = 1`, `fe = 1`):
//!
//! ```
//! use spider_irmc::{
//!     Action, ChannelMode, DedupOutcome, IrmcConfig, ReceiveResult, ReceiverEndpoint,
//!     SenderEndpoint,
//! };
//! use spider_crypto::{Digest, Digestible, Keyring};
//! use spider_types::{Position, SimTime, WireSize};
//!
//! #[derive(Debug, Clone, PartialEq)]
//! struct Op(u64);
//! impl WireSize for Op {
//!     fn wire_size(&self) -> usize { 64 }
//! }
//! impl Digestible for Op {
//!     fn digest(&self) -> Digest { Digest::builder().u64(self.0).finish() }
//! }
//!
//! let cfg = IrmcConfig::new(ChannelMode::ReliableCast { dedup: true }, 4, 1, 3, 1, 16);
//! let ring = Keyring::new(1);
//! let mut senders: Vec<SenderEndpoint<Op>> =
//!     (0..4).map(|i| SenderEndpoint::new(cfg.clone(), i, ring.clone())).collect();
//! let mut receiver: ReceiverEndpoint<Op> = ReceiverEndpoint::new(cfg, 0, ring);
//!
//! // Every sender submits the same two-slot batch for subchannel 0.
//! // Under dedup, one rotated carrier ships the signed content; the
//! // other three send digest-only vouches.
//! let mut follow_up = Vec::new();
//! for (i, s) in senders.iter_mut().enumerate() {
//!     let mut actions = Vec::new();
//!     s.send_batch(0, Position(1), vec![Op(42), Op(43)], &mut actions);
//!     for a in actions {
//!         if let Action::ToReceiver { to: 0, msg } = a {
//!             let _ = receiver.on_sender_message(SimTime::ZERO, i, msg, &mut follow_up);
//!         }
//!     }
//! }
//! // fs + 1 = 2 matching statements (content + vouch) deliver the batch.
//! let ReceiveResult::Ready(d) = receiver.try_receive(0, Position(1)) else {
//!     panic!("batch should be delivered");
//! };
//! assert_eq!(d.payload, Op(42));
//! assert_eq!(d.dedup, DedupOutcome::Primary);
//! assert_eq!(receiver.try_receive(0, Position(2)).into_payload(), Some(Op(43)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod error;
mod messages;
mod receiver;
mod sender;
mod window;

#[cfg(test)]
pub(crate) mod tests_support {
    //! Shared fixtures for in-crate tests.
    use spider_crypto::{Digest, Digestible};
    use spider_types::WireSize;

    /// A small content blob with real digests.
    #[derive(Debug, Clone, PartialEq)]
    pub struct Blob(pub Vec<u8>);

    impl Blob {
        pub fn new(data: &[u8]) -> Self {
            Blob(data.to_vec())
        }
    }

    impl WireSize for Blob {
        fn wire_size(&self) -> usize {
            spider_types::wire::HEADER_BYTES + self.0.len()
        }
    }

    impl Digestible for Blob {
        fn digest(&self) -> Digest {
            Digest::of_bytes(&self.0)
        }
    }
}

pub use config::{ChannelMode, IrmcConfig, Variant};
pub use error::IrmcError;
pub use messages::{range_digest, slot_digest, ChannelMsg, ReceiverMsg};
pub use receiver::{DedupOutcome, Delivery, ReceiveResult, ReceiverEndpoint};
pub use sender::{SendStatus, SenderEndpoint, RC_RECAST_TICKS};
pub use window::Window;

use spider_crypto::Digestible;
use spider_types::{SimTime, WireSize};

/// Content that can travel through an IRMC.
pub trait Content: Digestible + Clone + PartialEq + std::fmt::Debug + WireSize + 'static {}
impl<T: Digestible + Clone + PartialEq + std::fmt::Debug + WireSize + 'static> Content for T {}

/// Subchannel identifier. Request channels use one subchannel per client
/// (the client id); commit channels use subchannel 0.
pub type Subchannel = u64;

/// Charge label of the RC recast path: a sender re-shipping unacked
/// ranges (e.g. after a partition heal swallowed the one-shot casts).
/// Hosts can match [`Action::Charge`]'s label against this to surface
/// liveness milestones in traces.
pub const OP_RECAST: &str = "recast";

/// Effects produced by endpoint calls, applied by the host.
#[derive(Debug, Clone, PartialEq)]
pub enum Action<M> {
    /// Transmit a channel message to receiver-side endpoint `to`.
    ToReceiver {
        /// Receiver index within the receiver group.
        to: usize,
        /// The message.
        msg: ChannelMsg<M>,
    },
    /// Transmit a channel message to sender-side endpoint `to`.
    ToSender {
        /// Sender index within the sender group.
        to: usize,
        /// The message.
        msg: ReceiverMsg,
    },
    /// Intra-sender-group message (IRMC-SC signature shares).
    ToPeerSender {
        /// Sender index within the sender group.
        to: usize,
        /// The message.
        msg: ChannelMsg<M>,
    },
    /// Charge CPU time to the hosting node. The second field names the
    /// operation the cost models (e.g. `"range_sign"`, `"window_mac"`)
    /// so hosts can attribute node busy-time for flamegraphs.
    Charge(SimTime, &'static str),
    /// A message became available: `try_receive(sc, p)` will now succeed
    /// (receiver side only).
    Ready {
        /// Subchannel.
        sc: Subchannel,
        /// Position.
        p: spider_types::Position,
    },
    /// The subchannel window moved; positions below `start` are gone.
    WindowMoved {
        /// Subchannel.
        sc: Subchannel,
        /// New window start.
        start: spider_types::Position,
    },
    /// A previously blocked `send` for this position was transmitted after
    /// a window shift (sender side only).
    Unblocked {
        /// Subchannel.
        sc: Subchannel,
        /// Position.
        p: spider_types::Position,
    },
    /// Arm (or re-arm) a host timer for collector supervision (IRMC-SC
    /// receiver side). `token` is opaque to the endpoint.
    SetTimer {
        /// Opaque token; feed back via `on_timer`.
        token: u64,
        /// Delay from now.
        delay: SimTime,
    },
}
