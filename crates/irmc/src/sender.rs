//! Sender-side IRMC endpoint (Fig 18 sender half; Fig 19 for IRMC-SC).

use crate::config::{IrmcConfig, Variant};
use crate::messages::{slot_digest, ChannelMsg, ReceiverMsg};
use crate::window::Window;
use crate::{Action, Content, Subchannel};
use spider_crypto::{Digest, Keyring, Signature};
use spider_types::{Position, SimTime};
use std::collections::{BTreeMap, HashMap};

/// Result of a [`SenderEndpoint::send`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendStatus {
    /// The message was transmitted (RC) or entered share collection (SC).
    Sent,
    /// The position is below the flow-control window; the message was
    /// discarded (the receivers already moved on).
    TooOld(
        /// Current window start.
        Position,
    ),
    /// The position is above the window; the message is queued and will be
    /// transmitted automatically once receivers move the window
    /// ([`Action::Unblocked`] will fire).
    Blocked,
}

#[derive(Debug)]
struct SenderSub<M> {
    awin: Window,
    /// Window-start positions received from each receiver via `Move`.
    receiver_starts: Vec<Position>,
    /// Highest window-shift this sender itself requested.
    my_move: Position,
    /// Sends above the window, waiting for a shift.
    blocked: BTreeMap<u64, M>,
    /// SC: content this endpoint submitted, by position.
    content: BTreeMap<u64, M>,
    /// SC: signature shares collected per position per sender.
    shares: BTreeMap<u64, HashMap<usize, (Digest, Signature)>>,
    /// SC: assembled certificates.
    bundles: BTreeMap<u64, (M, Vec<Signature>)>,
}

impl<M> SenderSub<M> {
    fn new(capacity: u64) -> Self {
        SenderSub {
            awin: Window::new(capacity),
            receiver_starts: Vec::new(),
            my_move: Position(0),
            blocked: BTreeMap::new(),
            content: BTreeMap::new(),
            shares: BTreeMap::new(),
            bundles: BTreeMap::new(),
        }
    }

    fn gc_below(&mut self, start: Position) {
        self.blocked.retain(|&p, _| p >= start.0);
        self.content.retain(|&p, _| p >= start.0);
        self.shares.retain(|&p, _| p >= start.0);
        self.bundles.retain(|&p, _| p >= start.0);
    }
}

/// The sender half of an IRMC, owned by one replica of the sender group.
pub struct SenderEndpoint<M> {
    cfg: IrmcConfig,
    me: usize,
    keyring: Keyring,
    subs: HashMap<Subchannel, SenderSub<M>>,
    /// SC: which sender each receiver uses as collector, per subchannel.
    collector_of: HashMap<(Subchannel, usize), usize>,
    /// SC: the progress vector announced last tick (suppresses idle
    /// re-announcements).
    last_progress: Vec<(Subchannel, Position)>,
}

impl<M: Content> SenderEndpoint<M> {
    /// Creates sender endpoint `me` of the channel.
    ///
    /// # Panics
    ///
    /// Panics if `me` is out of range.
    pub fn new(cfg: IrmcConfig, me: usize, keyring: Keyring) -> Self {
        assert!(me < cfg.n_senders, "sender index out of range");
        SenderEndpoint {
            cfg,
            me,
            keyring,
            subs: HashMap::new(),
            collector_of: HashMap::new(),
            last_progress: Vec::new(),
        }
    }

    /// This endpoint's index within the sender group.
    pub fn index(&self) -> usize {
        self.me
    }

    /// Current flow-control window of a subchannel.
    pub fn window(&self, sc: Subchannel) -> Window {
        self.subs.get(&sc).map(|s| s.awin).unwrap_or_else(|| Window::new(self.cfg.capacity))
    }

    /// Default collector assignment: receiver `r` is served by sender
    /// `r mod n_senders` until it announces otherwise via `Select`.
    fn collector_for(&self, sc: Subchannel, receiver: usize) -> usize {
        self.collector_of.get(&(sc, receiver)).copied().unwrap_or(receiver % self.cfg.n_senders)
    }

    fn sub(&mut self, sc: Subchannel) -> &mut SenderSub<M> {
        let (capacity, n_receivers) = (self.cfg.capacity, self.cfg.n_receivers);
        self.subs.entry(sc).or_insert_with(|| {
            let mut s = SenderSub::new(capacity);
            s.receiver_starts = vec![Position(1); n_receivers];
            s
        })
    }

    /// Submits content for `(sc, p)` (Fig 14 `send`).
    ///
    /// Never blocks the caller: above-window sends are queued and flushed
    /// automatically when the window moves ([`Action::Unblocked`]).
    pub fn send(
        &mut self,
        sc: Subchannel,
        p: Position,
        msg: M,
        out: &mut Vec<Action<M>>,
    ) -> SendStatus {
        let sub = self.sub(sc);
        if sub.awin.is_below(p) {
            return SendStatus::TooOld(sub.awin.start());
        }
        if sub.awin.is_above(p) {
            sub.blocked.insert(p.0, msg);
            return SendStatus::Blocked;
        }
        self.transmit(sc, p, msg, out);
        SendStatus::Sent
    }

    /// Requests a forward shift of the subchannel window (Fig 14
    /// `move_window`, sender side): broadcast a `Move` to all receivers.
    /// The local window only moves once `fr + 1` receivers confirm.
    pub fn move_window(&mut self, sc: Subchannel, p: Position, out: &mut Vec<Action<M>>) {
        let sub = self.sub(sc);
        if p <= sub.my_move {
            return;
        }
        sub.my_move = p;
        out.push(Action::Charge(self.cfg.cost.hmac(32)));
        for r in 0..self.cfg.n_receivers {
            out.push(Action::ToReceiver { to: r, msg: ChannelMsg::Move { sc, p } });
        }
    }

    /// Handles a message from receiver endpoint `from`.
    pub fn on_receiver_message(&mut self, from: usize, msg: ReceiverMsg, out: &mut Vec<Action<M>>) {
        if from >= self.cfg.n_receivers {
            return;
        }
        // MAC check on every receiver message.
        out.push(Action::Charge(self.cfg.cost.hmac(32)));
        match msg {
            ReceiverMsg::Move { sc, p } => self.on_receiver_move(from, sc, p, out),
            ReceiverMsg::Select { sc, collector } => {
                if collector >= self.cfg.n_senders {
                    return;
                }
                self.collector_of.insert((sc, from), collector);
                if collector == self.me {
                    // Re-ship everything we have certified (Fig 19 L39).
                    let bundles: Vec<(u64, (M, Vec<Signature>))> = self
                        .subs
                        .get(&sc)
                        .map(|s| s.bundles.iter().map(|(p, b)| (*p, b.clone())).collect())
                        .unwrap_or_default();
                    for (p, (m, shares)) in bundles {
                        out.push(Action::Charge(self.cfg.cost.hmac(m.wire_size())));
                        out.push(Action::ToReceiver {
                            to: from,
                            msg: ChannelMsg::Certificate { sc, p: Position(p), msg: m, shares },
                        });
                    }
                }
            }
        }
    }

    fn on_receiver_move(
        &mut self,
        from: usize,
        sc: Subchannel,
        p: Position,
        out: &mut Vec<Action<M>>,
    ) {
        let fr = self.cfg.fr;
        let sub = self.sub(sc);
        if p <= sub.receiver_starts[from] {
            return;
        }
        sub.receiver_starts[from] = p;
        // New window start: the (fr + 1)-highest receiver request — at
        // least one correct receiver has permitted this shift (§3.2).
        let mut starts = sub.receiver_starts.clone();
        starts.sort_unstable_by(|a, b| b.cmp(a));
        let new_start = starts[fr];
        if sub.awin.advance_to(new_start) {
            sub.gc_below(new_start);
            out.push(Action::WindowMoved { sc, start: new_start });
            self.flush_blocked(sc, out);
        }
    }

    /// Transmits queued sends that fit into the (moved) window.
    fn flush_blocked(&mut self, sc: Subchannel, out: &mut Vec<Action<M>>) {
        loop {
            let sub = self.sub(sc);
            let Some((&p, _)) = sub.blocked.iter().next() else {
                return;
            };
            let pos = Position(p);
            if sub.awin.is_above(pos) {
                return;
            }
            let msg = sub.blocked.remove(&p).expect("just observed");
            if sub.awin.is_below(pos) {
                continue; // overtaken by the window; drop silently
            }
            out.push(Action::Unblocked { sc, p: pos });
            self.transmit(sc, pos, msg, out);
        }
    }

    /// Performs the variant-specific submission of in-window content.
    fn transmit(&mut self, sc: Subchannel, p: Position, msg: M, out: &mut Vec<Action<M>>) {
        let digest = slot_digest(sc, p, &msg.digest());
        // Hash the payload and produce one RSA signature.
        out.push(Action::Charge(self.cfg.cost.hmac(msg.wire_size()) + self.cfg.cost.rsa_sign()));
        let sig = self.keyring.sign(self.key_of_sender(self.me), &digest);
        match self.cfg.variant {
            Variant::ReceiverCollect => {
                for r in 0..self.cfg.n_receivers {
                    out.push(Action::ToReceiver {
                        to: r,
                        msg: ChannelMsg::Send { sc, p, msg: msg.clone(), sig },
                    });
                }
            }
            Variant::SenderCollect => {
                let me = self.me;
                let content_digest = msg.digest();
                let sub = self.sub(sc);
                sub.content.insert(p.0, msg);
                sub.shares.entry(p.0).or_default().insert(me, (content_digest, sig));
                for s in 0..self.cfg.n_senders {
                    if s != me {
                        out.push(Action::ToPeerSender {
                            to: s,
                            msg: ChannelMsg::SigShare { sc, p, digest: content_digest, sig },
                        });
                    }
                }
                self.maybe_bundle(sc, p, out);
            }
        }
    }

    /// Handles an intra-group message from peer sender `from` (IRMC-SC).
    pub fn on_peer_message(&mut self, from: usize, msg: ChannelMsg<M>, out: &mut Vec<Action<M>>) {
        if from >= self.cfg.n_senders || from == self.me {
            return;
        }
        let ChannelMsg::SigShare { sc, p, digest, sig } = msg else {
            return;
        };
        if self.cfg.variant != Variant::SenderCollect {
            return;
        }
        // Verify the peer's share signature.
        out.push(Action::Charge(self.cfg.cost.rsa_verify()));
        let slot = slot_digest(sc, p, &digest);
        if !self.keyring.verify(self.key_of_sender(from), &slot, &sig) {
            return;
        }
        let sub = self.sub(sc);
        if sub.awin.is_below(p) {
            return;
        }
        // Only the first share per (position, sender) counts (Fig 19 L17).
        sub.shares.entry(p.0).or_default().entry(from).or_insert((digest, sig));
        self.maybe_bundle(sc, p, out);
    }

    /// Assembles and ships a certificate once `fs + 1` matching shares and
    /// the content itself are present (Fig 19 L22-24).
    fn maybe_bundle(&mut self, sc: Subchannel, p: Position, out: &mut Vec<Action<M>>) {
        let fs = self.cfg.fs;
        let me = self.me;
        let n_receivers = self.cfg.n_receivers;
        let sub = self.sub(sc);
        if sub.bundles.contains_key(&p.0) {
            return;
        }
        let Some(content) = sub.content.get(&p.0) else {
            return;
        };
        let want = content.digest();
        let Some(shares) = sub.shares.get(&p.0) else {
            return;
        };
        let mut matching: Vec<(usize, Signature)> = shares
            .iter()
            .filter(|(_, (d, _))| *d == want)
            .map(|(s, (_, sig))| (*s, *sig))
            .collect();
        if matching.len() < fs + 1 {
            return;
        }
        matching.sort_by_key(|(s, _)| *s);
        matching.truncate(fs + 1);
        let vec: Vec<Signature> = matching.into_iter().map(|(_, sig)| sig).collect();
        let content = content.clone();
        sub.bundles.insert(p.0, (content.clone(), vec.clone()));

        let targets: Vec<usize> =
            (0..n_receivers).filter(|r| self.collector_for(sc, *r) == me).collect();
        for r in targets {
            out.push(Action::Charge(self.cfg.cost.hmac(content.wire_size())));
            out.push(Action::ToReceiver {
                to: r,
                msg: ChannelMsg::Certificate { sc, p, msg: content.clone(), shares: vec.clone() },
            });
        }
    }

    /// Periodic driver for IRMC-SC: emits `Progress` announcements listing
    /// the highest gap-free certified position per subchannel (Fig 19
    /// L26-30). Call every [`IrmcConfig::progress_interval`]. No-op for RC.
    pub fn tick(&mut self, _now: SimTime, out: &mut Vec<Action<M>>) {
        if self.cfg.variant != Variant::SenderCollect {
            return;
        }
        let mut positions = Vec::new();
        for (&sc, sub) in &self.subs {
            let mut prog = None;
            let mut p = sub.awin.start().0;
            while sub.bundles.contains_key(&p) {
                prog = Some(p);
                p += 1;
            }
            if let Some(prog) = prog {
                positions.push((sc, Position(prog)));
            }
        }
        positions.sort_unstable();
        if positions.is_empty() || positions == self.last_progress {
            return; // Nothing new to announce; stay quiet.
        }
        self.last_progress = positions.clone();
        out.push(Action::Charge(self.cfg.cost.hmac(positions.len() * 16)));
        for r in 0..self.cfg.n_receivers {
            out.push(Action::ToReceiver {
                to: r,
                msg: ChannelMsg::Progress { positions: positions.clone() },
            });
        }
    }

    fn key_of_sender(&self, idx: usize) -> spider_crypto::KeyId {
        self.cfg.sender_keys[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests_support::Blob;
    use spider_crypto::Digestible as _;

    fn cfg(variant: Variant) -> IrmcConfig {
        IrmcConfig::new(variant, 3, 1, 3, 1, 4).with_cost(spider_crypto::CostModel::zero())
    }

    fn sender(variant: Variant, me: usize) -> SenderEndpoint<Blob> {
        SenderEndpoint::new(cfg(variant), me, Keyring::new(5))
    }

    #[test]
    fn rc_send_fans_out_to_all_receivers() {
        let mut s = sender(Variant::ReceiverCollect, 0);
        let mut out = Vec::new();
        let st = s.send(7, Position(1), Blob::new(b"m"), &mut out);
        assert_eq!(st, SendStatus::Sent);
        let sends = out
            .iter()
            .filter(|a| matches!(a, Action::ToReceiver { msg: ChannelMsg::Send { .. }, .. }))
            .count();
        assert_eq!(sends, 3);
    }

    #[test]
    fn send_above_window_blocks_and_flushes_on_move() {
        let mut s = sender(Variant::ReceiverCollect, 0);
        let mut out = Vec::new();
        // Window is [1, 4]; position 6 must block.
        assert_eq!(s.send(0, Position(6), Blob::new(b"m"), &mut out), SendStatus::Blocked);
        assert!(out.iter().all(|a| !matches!(a, Action::ToReceiver { .. })));

        // fr + 1 = 2 receivers move their windows to 3: window = [3, 6].
        out.clear();
        s.on_receiver_message(0, ReceiverMsg::Move { sc: 0, p: Position(3) }, &mut out);
        assert!(
            !out.iter().any(|a| matches!(a, Action::Unblocked { .. })),
            "one receiver is not enough (fr = 1)"
        );
        s.on_receiver_message(1, ReceiverMsg::Move { sc: 0, p: Position(3) }, &mut out);
        assert!(out.iter().any(|a| matches!(a, Action::Unblocked { p, .. } if *p == Position(6))));
        assert!(out.iter().any(|a| matches!(a, Action::ToReceiver { .. })));
        assert_eq!(s.window(0).start(), Position(3));
    }

    #[test]
    fn send_below_window_reports_too_old() {
        let mut s = sender(Variant::ReceiverCollect, 0);
        let mut out = Vec::new();
        s.on_receiver_message(0, ReceiverMsg::Move { sc: 0, p: Position(5) }, &mut out);
        s.on_receiver_message(1, ReceiverMsg::Move { sc: 0, p: Position(5) }, &mut out);
        assert_eq!(
            s.send(0, Position(2), Blob::new(b"m"), &mut out),
            SendStatus::TooOld(Position(5))
        );
    }

    #[test]
    fn stale_receiver_moves_are_ignored() {
        let mut s = sender(Variant::ReceiverCollect, 0);
        let mut out = Vec::new();
        s.on_receiver_message(0, ReceiverMsg::Move { sc: 0, p: Position(5) }, &mut out);
        s.on_receiver_message(0, ReceiverMsg::Move { sc: 0, p: Position(2) }, &mut out);
        s.on_receiver_message(1, ReceiverMsg::Move { sc: 0, p: Position(5) }, &mut out);
        assert_eq!(s.window(0).start(), Position(5), "regression discarded");
    }

    #[test]
    fn sc_send_exchanges_shares_then_certificate() {
        let ring = Keyring::new(5);
        let mut s0 = SenderEndpoint::<Blob>::new(cfg(Variant::SenderCollect), 0, ring.clone());
        let mut s1 = SenderEndpoint::<Blob>::new(cfg(Variant::SenderCollect), 1, ring.clone());
        let mut out0 = Vec::new();
        let mut out1 = Vec::new();
        let m = Blob::new(b"content");
        s0.send(0, Position(1), m.clone(), &mut out0);
        s1.send(0, Position(1), m.clone(), &mut out1);
        // No certificates yet (each has only its own share; fs + 1 = 2).
        assert!(!out0
            .iter()
            .any(|a| matches!(a, Action::ToReceiver { msg: ChannelMsg::Certificate { .. }, .. })));
        // Deliver s1's share to s0.
        let share = out1
            .iter()
            .find_map(|a| match a {
                Action::ToPeerSender { to: 0, msg } => Some(msg.clone()),
                _ => None,
            })
            .expect("share for s0");
        let mut out = Vec::new();
        s0.on_peer_message(1, share, &mut out);
        // s0 is the default collector for receiver 0 (0 % 3) and ships one
        // certificate there.
        let certs: Vec<usize> = out
            .iter()
            .filter_map(|a| match a {
                Action::ToReceiver { to, msg: ChannelMsg::Certificate { shares, .. } } => {
                    assert_eq!(shares.len(), 2);
                    Some(*to)
                }
                _ => None,
            })
            .collect();
        assert_eq!(certs, vec![0]);
    }

    #[test]
    fn sc_mismatching_share_does_not_bundle() {
        let ring = Keyring::new(5);
        let mut s0 = SenderEndpoint::<Blob>::new(cfg(Variant::SenderCollect), 0, ring.clone());
        let mut out = Vec::new();
        s0.send(0, Position(1), Blob::new(b"good"), &mut out);
        out.clear();
        // A (faulty) peer shares a signature over *different* content.
        let bad_digest = Blob::new(b"evil").digest();
        let slot = slot_digest(0, Position(1), &bad_digest);
        let sig = ring.sign(spider_crypto::KeyId(1001), &slot);
        s0.on_peer_message(
            1,
            ChannelMsg::SigShare { sc: 0, p: Position(1), digest: bad_digest, sig },
            &mut out,
        );
        assert!(!out
            .iter()
            .any(|a| matches!(a, Action::ToReceiver { msg: ChannelMsg::Certificate { .. }, .. })));
    }

    #[test]
    fn sc_select_reassigns_collector_and_reships() {
        let ring = Keyring::new(5);
        let mut s1 = SenderEndpoint::<Blob>::new(cfg(Variant::SenderCollect), 1, ring.clone());
        let mut s0_share_out = Vec::new();
        let mut s0 = SenderEndpoint::<Blob>::new(cfg(Variant::SenderCollect), 0, ring.clone());
        let m = Blob::new(b"c");
        s0.send(0, Position(1), m.clone(), &mut s0_share_out);
        let mut out = Vec::new();
        s1.send(0, Position(1), m, &mut out);
        let share = s0_share_out
            .iter()
            .find_map(|a| match a {
                Action::ToPeerSender { to: 1, msg } => Some(msg.clone()),
                _ => None,
            })
            .unwrap();
        out.clear();
        s1.on_peer_message(0, share, &mut out);
        // s1 is default collector for receiver 1 only.
        assert!(out.iter().any(|a| matches!(
            a,
            Action::ToReceiver { to: 1, msg: ChannelMsg::Certificate { .. } }
        )));
        // Receiver 0 switches its collector to s1: the bundle re-ships.
        out.clear();
        s1.on_receiver_message(0, ReceiverMsg::Select { sc: 0, collector: 1 }, &mut out);
        assert!(out.iter().any(|a| matches!(
            a,
            Action::ToReceiver { to: 0, msg: ChannelMsg::Certificate { .. } }
        )));
    }

    #[test]
    fn sc_tick_reports_gap_free_progress() {
        let ring = Keyring::new(5);
        let c = cfg(Variant::SenderCollect);
        let mut senders: Vec<SenderEndpoint<Blob>> =
            (0..3).map(|i| SenderEndpoint::new(c.clone(), i, ring.clone())).collect();
        // Certify positions 1 and 3 (gap at 2) on sender 0.
        for p in [1u64, 3] {
            let m = Blob::new(format!("m{p}").as_bytes());
            let mut outs: Vec<Vec<Action<Blob>>> = vec![Vec::new(); 3];
            for (i, s) in senders.iter_mut().enumerate() {
                s.send(0, Position(p), m.clone(), &mut outs[i]);
            }
            // Deliver all shares to everyone.
            for (i, out) in outs.iter().enumerate() {
                let shares: Vec<(usize, ChannelMsg<Blob>)> = out
                    .iter()
                    .filter_map(|a| match a {
                        Action::ToPeerSender { to, msg } => Some((*to, msg.clone())),
                        _ => None,
                    })
                    .collect();
                for (to, msg) in shares {
                    let mut sink = Vec::new();
                    senders[to].on_peer_message(i, msg, &mut sink);
                }
            }
        }
        let mut out = Vec::new();
        senders[0].tick(SimTime::ZERO, &mut out);
        let progress = out
            .iter()
            .find_map(|a| match a {
                Action::ToReceiver { msg: ChannelMsg::Progress { positions }, .. } => {
                    Some(positions.clone())
                }
                _ => None,
            })
            .expect("progress announced");
        assert_eq!(progress, vec![(0, Position(1))], "stops at the gap");
    }
}
