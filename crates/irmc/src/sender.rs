//! Sender-side IRMC endpoint (Fig 18 sender half; Fig 19 for IRMC-SC),
//! with multi-slot range certification.
//!
//! [`SenderEndpoint::send_batch`] amortizes the per-slot RSA signature —
//! the saturating cost of a loaded commit channel — over a contiguous
//! slot range: one signature covers the Merkle root of the per-slot
//! digests (see [`crate::messages`]). For IRMC-SC the collector
//! additionally overlaps WAN content shipping with the intra-region
//! share exchange (§A.9): content ships as soon as it is submitted, the
//! certificate follows shares-only. For IRMC-RC with
//! [`crate::ChannelMode::ReliableCast`] `{ dedup: true }`, a
//! deterministically-rotated primary carrier ships the one signed
//! content copy while the other senders confirm the range with a
//! digest-only [`ChannelMsg::RangeVouch`], and every sender retains the
//! content to answer a receiver's [`ReceiverMsg::FetchRange`] should the
//! carrier stall.
//!
//! Range boundaries must match across correct senders for SC shares to
//! combine; callers therefore cut ranges at deterministic points (the
//! agreement replicas use consensus batch boundaries). If boundaries
//! still diverge (e.g. one replica replays after a checkpoint restore),
//! [`SenderEndpoint::tick`] notices certification stalling and falls
//! back to legacy per-slot shares, which match regardless of boundaries.

use crate::config::{IrmcConfig, Variant};
use crate::messages::{carrier_for, range_digest, slot_digest, ChannelMsg, ReceiverMsg};
use crate::window::Window;
use crate::{Action, Content, IrmcError, Subchannel};
use spider_crypto::{merkle_root, Digest, Keyring, Signature};
use spider_types::{Position, SimTime};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Result of a [`SenderEndpoint::send`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendStatus {
    /// The message was transmitted (RC) or entered share collection (SC).
    Sent,
    /// The position is below the flow-control window; the message was
    /// discarded (the receivers already moved on).
    TooOld(
        /// Current window start.
        Position,
    ),
    /// The position is above the window; the message is queued and will be
    /// transmitted automatically once receivers move the window
    /// ([`Action::Unblocked`] will fire).
    Blocked,
}

/// RC: consecutive window-stalled ticks (at the actors' 20 ms tick
/// cadence) before retained content is re-cast — 500 ms, comfortably
/// above a WAN round trip, so the recast never fires while the original
/// casts are still in flight.
pub const RC_RECAST_TICKS: u8 = 25;

/// Where a submitted slot's content lives: single submissions own their
/// message, range submissions index into the shared range payload.
#[derive(Debug)]
enum SlotContent<M> {
    Single(Arc<M>),
    InRange { msgs: Arc<Vec<M>>, idx: u32 },
}

impl<M: Clone> SlotContent<M> {
    /// `None` only if a range index is out of bounds, which no reachable
    /// state produces; callers skip the slot rather than panic.
    fn get(&self) -> Option<&M> {
        match self {
            SlotContent::Single(m) => Some(m),
            SlotContent::InRange { msgs, idx } => msgs.get(*idx as usize),
        }
    }

    /// Shared handle to the content (deep-copies only on the rare
    /// range-to-single fallback path).
    fn arc(&self) -> Option<Arc<M>> {
        match self {
            SlotContent::Single(m) => Some(m.clone()),
            SlotContent::InRange { msgs, idx } => msgs.get(*idx as usize).cloned().map(Arc::new),
        }
    }
}

/// SC: a range this endpoint submitted itself.
#[derive(Debug)]
struct RangeInfo<M> {
    msgs: Arc<Vec<M>>,
    root: Digest,
    /// Receivers the raw content was already shipped to (§A.9 overlap).
    shipped: Vec<bool>,
}

/// SC: signature shares collected for one `(first, root)` range statement.
#[derive(Debug)]
struct RangeShareSet {
    count: u32,
    sigs: BTreeMap<usize, Signature>,
}

/// SC: an assembled range certificate.
#[derive(Debug)]
struct RangeBundle<M> {
    msgs: Arc<Vec<M>>,
    root: Digest,
    shares: Vec<Signature>,
}

/// Contiguous single-slot sends accumulating under the linger knob.
#[derive(Debug)]
struct PendingRun<M> {
    first: u64,
    msgs: Vec<M>,
    deadline: SimTime,
}

#[derive(Debug)]
struct SenderSub<M> {
    awin: Window,
    /// Window-start positions received from each receiver via `Move`.
    receiver_starts: Vec<Position>,
    /// Scratch buffer for the `fr + 1`-selection (reused across `Move`s).
    starts_scratch: Vec<Position>,
    /// Highest window-shift this sender itself requested.
    my_move: Position,
    /// Sends above the window, waiting for a shift (keyed by first slot).
    /// Whole chunks queue atomically so their boundaries survive the wait
    /// (SC shares only combine over identical ranges, and the RC dedup
    /// carrier rotation keys on the chunk's first position).
    blocked: BTreeMap<u64, Vec<M>>,
    /// RC: ranges this endpoint submitted, retained (until the window
    /// moves past them) to answer a receiver's
    /// [`ReceiverMsg::FetchRange`] when the dedup primary carrier
    /// stalls, and to re-cast when the window itself stalls (a healed
    /// partition may have eaten the original casts).
    rc_ranges: BTreeMap<u64, Arc<Vec<M>>>,
    /// Content this endpoint submitted, by position. SC uses it for
    /// share assembly and reshipping; RC retains single-slot sends here
    /// for the stalled-window re-cast.
    content: BTreeMap<u64, SlotContent<M>>,
    /// SC: legacy per-slot signature shares, per position per sender.
    shares: BTreeMap<u64, BTreeMap<usize, (Digest, Signature)>>,
    /// SC: assembled single-slot certificates (content shared for cheap
    /// multi-receiver fan-out).
    bundles: BTreeMap<u64, (Arc<M>, Vec<Signature>)>,
    /// SC: ranges this endpoint submitted, keyed by first position.
    ranges: BTreeMap<u64, RangeInfo<M>>,
    /// SC: range shares collected per `(first, root)` statement.
    range_shares: BTreeMap<(u64, Digest), RangeShareSet>,
    /// SC: assembled range certificates, keyed by first position.
    range_bundles: BTreeMap<u64, RangeBundle<M>>,
    /// Cached gap-free certified high-watermark: every position in
    /// `[awin.start, certified_hwm]` is certified; a value below the
    /// window start means "none yet". Advanced incrementally instead of
    /// rescanning from the window start on every tick.
    certified_hwm: u64,
    /// Watermark observed at the previous tick plus a stall counter:
    /// drives the per-slot fallback for diverged range boundaries.
    last_tick_hwm: u64,
    stalled_ticks: u8,
    /// RC: window start observed at the previous recast tick plus a
    /// stall counter — drives the re-cast of retained content when the
    /// window sits still with undelivered slots (healed partition).
    rc_last_start: u64,
    rc_stall_ticks: u8,
    /// Linger buffer for [`SenderEndpoint::send_buffered`].
    pending: Option<PendingRun<M>>,
}

impl<M: Content> SenderSub<M> {
    fn new(capacity: u64) -> Self {
        SenderSub {
            awin: Window::new(capacity),
            receiver_starts: Vec::new(),
            starts_scratch: Vec::new(),
            my_move: Position(0),
            blocked: BTreeMap::new(),
            rc_ranges: BTreeMap::new(),
            content: BTreeMap::new(),
            shares: BTreeMap::new(),
            bundles: BTreeMap::new(),
            ranges: BTreeMap::new(),
            range_shares: BTreeMap::new(),
            range_bundles: BTreeMap::new(),
            certified_hwm: 0,
            last_tick_hwm: 0,
            stalled_ticks: 0,
            rc_last_start: 0,
            rc_stall_ticks: 0,
            pending: None,
        }
    }

    fn gc_below(&mut self, start: Position) {
        let s = start.0;
        self.blocked.retain(|&p, chunk| p + chunk.len() as u64 > s);
        self.rc_ranges.retain(|&p, msgs| p + msgs.len() as u64 > s);
        self.content.retain(|&p, _| p >= s);
        self.shares.retain(|&p, _| p >= s);
        self.bundles.retain(|&p, _| p >= s);
        self.ranges.retain(|&p, r| p + r.msgs.len() as u64 > s);
        self.range_shares.retain(|&(p, _), set| p + set.count as u64 > s);
        self.range_bundles.retain(|&p, b| p + b.msgs.len() as u64 > s);
        if let Some(run) = &self.pending {
            if run.first + run.msgs.len() as u64 <= s {
                self.pending = None;
            }
        }
    }

    /// Whether position `p` is covered by a certificate (single or range).
    fn certified(&self, p: u64) -> bool {
        if self.bundles.contains_key(&p) {
            return true;
        }
        if let Some((first, rb)) = self.range_bundles.range(..=p).next_back() {
            return p < first + rb.msgs.len() as u64;
        }
        false
    }

    /// Advances the cached gap-free certified watermark.
    fn advance_hwm(&mut self) {
        let start = self.awin.start().0;
        if self.certified_hwm + 1 < start {
            self.certified_hwm = start - 1;
        }
        while self.certified(self.certified_hwm + 1) {
            self.certified_hwm += 1;
        }
    }

    /// Highest gap-free certified position from the window start, if any.
    fn progress(&self) -> Option<Position> {
        (self.certified_hwm >= self.awin.start().0).then_some(Position(self.certified_hwm))
    }
}

/// The sender half of an IRMC, owned by one replica of the sender group.
pub struct SenderEndpoint<M> {
    cfg: IrmcConfig,
    me: usize,
    keyring: Keyring,
    subs: BTreeMap<Subchannel, SenderSub<M>>,
    /// SC: which sender each receiver uses as collector, per subchannel.
    collector_of: BTreeMap<(Subchannel, usize), usize>,
    /// SC: the progress vector announced last tick (suppresses idle
    /// re-announcements).
    last_progress: Vec<(Subchannel, Position)>,
}

impl<M: Content> SenderEndpoint<M> {
    /// Creates sender endpoint `me` of the channel.
    ///
    /// # Panics
    ///
    /// Panics if `me` is out of range.
    pub fn new(cfg: IrmcConfig, me: usize, keyring: Keyring) -> Self {
        assert!(me < cfg.n_senders, "sender index out of range");
        SenderEndpoint {
            cfg,
            me,
            keyring,
            subs: BTreeMap::new(),
            collector_of: BTreeMap::new(),
            last_progress: Vec::new(),
        }
    }

    /// This endpoint's index within the sender group.
    pub fn index(&self) -> usize {
        self.me
    }

    /// Current flow-control window of a subchannel.
    pub fn window(&self, sc: Subchannel) -> Window {
        self.subs.get(&sc).map(|s| s.awin).unwrap_or_else(|| Window::new(self.cfg.capacity))
    }

    /// Default collector assignment: receiver `r` is served by sender
    /// `r mod n_senders` until it announces otherwise via `Select`.
    fn collector_for(&self, sc: Subchannel, receiver: usize) -> usize {
        self.collector_of.get(&(sc, receiver)).copied().unwrap_or(receiver % self.cfg.n_senders)
    }

    fn sub(&mut self, sc: Subchannel) -> &mut SenderSub<M> {
        let (capacity, n_receivers) = (self.cfg.capacity, self.cfg.n_receivers);
        self.subs.entry(sc).or_insert_with(|| {
            let mut s = SenderSub::new(capacity);
            s.receiver_starts = vec![Position(1); n_receivers];
            s
        })
    }

    /// Largest range this channel actually certifies: the configured cap,
    /// bounded by the window capacity (a longer range could never fit).
    fn range_cap(&self) -> usize {
        self.cfg.max_range.min(self.cfg.capacity as usize).max(1)
    }

    /// Submits a contiguous run of slots `[first, first + msgs.len())` in
    /// one call — the single submission entry point (a batch of one *is*
    /// the legacy `send`, byte-for-byte). Runs longer than
    /// [`IrmcConfig::max_range`] are chunked into Merkle ranges, each
    /// certified by one RSA signature (and one verification per receiver,
    /// per share for SC) instead of one per slot.
    ///
    /// Chunk boundaries are derived from `first`, so callers submitting
    /// identical runs produce identical ranges (required for SC share
    /// matching and RC dedup carrier rotation). Chunks above the window
    /// queue atomically and flush on [`Action::Unblocked`]; a run of
    /// length 1 degenerates to the legacy single-slot wire messages.
    ///
    /// Returns `TooOld` if every slot is below the window, `Blocked` if
    /// nothing could be transmitted yet, `Sent` otherwise.
    pub fn send_batch(
        &mut self,
        sc: Subchannel,
        first: Position,
        msgs: Vec<M>,
        out: &mut Vec<Action<M>>,
    ) -> SendStatus {
        if msgs.is_empty() {
            return SendStatus::Sent;
        }
        let cap = self.range_cap();
        let sub = self.sub(sc);
        let start = sub.awin.start().0;
        let mut status = SendStatus::TooOld(sub.awin.start());
        let mut chunk_first = first.0;
        let mut remaining = msgs;
        while !remaining.is_empty() {
            let n = remaining.len().min(cap);
            let rest = remaining.split_off(n);
            let chunk = std::mem::replace(&mut remaining, rest);
            let chunk_end = chunk_first + n as u64 - 1;
            if chunk_end < start {
                // Entire chunk below the window: receivers moved on.
                chunk_first += n as u64;
                continue;
            }
            let sub = self.sub(sc);
            if sub.awin.is_above(Position(chunk_end)) {
                // Queue the whole chunk so its boundary survives the wait.
                sub.blocked.insert(chunk_first, chunk);
                if status != SendStatus::Sent {
                    status = SendStatus::Blocked;
                }
            } else {
                let (f, c) = trim_below(chunk_first, chunk, start);
                self.transmit_range(sc, f, c, out);
                status = SendStatus::Sent;
            }
            chunk_first += n as u64;
        }
        status
    }

    /// Submits a single slot through the linger buffer: contiguous sends
    /// accumulate into a pending range that flushes when it reaches
    /// [`IrmcConfig::max_range`] slots, when a non-contiguous position
    /// arrives, or at the latest one [`IrmcConfig::range_linger`] later
    /// (enforced by [`SenderEndpoint::tick`], which the host must then
    /// drive for RC channels too). With a zero linger this is exactly a
    /// singleton [`SenderEndpoint::send_batch`].
    pub fn send_buffered(
        &mut self,
        sc: Subchannel,
        p: Position,
        msg: M,
        now: SimTime,
        out: &mut Vec<Action<M>>,
    ) -> SendStatus {
        if self.cfg.range_linger == SimTime::ZERO || self.cfg.max_range <= 1 {
            // analyzer: allow(charge-coverage, "delegates to send_batch(), which charges per transmission")
            return self.send_batch(sc, p, vec![msg], out);
        }
        let linger = self.cfg.range_linger;
        let cap = self.range_cap();
        let sub = self.sub(sc);
        if sub.awin.is_below(p) {
            return SendStatus::TooOld(sub.awin.start());
        }
        match &mut sub.pending {
            Some(run) if p.0 == run.first + run.msgs.len() as u64 => {
                run.msgs.push(msg);
                if run.msgs.len() >= cap {
                    self.flush_pending(sc, out);
                }
                return SendStatus::Sent;
            }
            Some(_) => self.flush_pending(sc, out),
            None => {}
        }
        let sub = self.sub(sc);
        sub.pending = Some(PendingRun { first: p.0, msgs: vec![msg], deadline: now + linger });
        SendStatus::Sent
    }

    /// Flushes the linger buffer of a subchannel, if any.
    pub fn flush_pending(&mut self, sc: Subchannel, out: &mut Vec<Action<M>>) {
        if let Some(run) = self.sub(sc).pending.take() {
            // analyzer: allow(charge-coverage, "delegates to send_batch(), which charges per transmission")
            self.send_batch(sc, Position(run.first), run.msgs, out);
        }
    }

    /// Requests a forward shift of the subchannel window (Fig 14
    /// `move_window`, sender side): broadcast a `Move` to all receivers.
    /// The local window only moves once `fr + 1` receivers confirm.
    pub fn move_window(&mut self, sc: Subchannel, p: Position, out: &mut Vec<Action<M>>) {
        let sub = self.sub(sc);
        if p <= sub.my_move {
            return;
        }
        sub.my_move = p;
        out.push(Action::Charge(self.cfg.cost.hmac(32), "window_mac"));
        for r in 0..self.cfg.n_receivers {
            out.push(Action::ToReceiver { to: r, msg: ChannelMsg::Move { sc, p } });
        }
    }

    /// Handles a message from receiver endpoint `from`.
    ///
    /// `Err` means the frame was rejected (and why); rejections are
    /// expected under Byzantine receivers — callers discard the frame and
    /// may count or log the reason.
    pub fn on_receiver_message(
        &mut self,
        from: usize,
        msg: ReceiverMsg,
        out: &mut Vec<Action<M>>,
    ) -> Result<(), IrmcError> {
        if from >= self.cfg.n_receivers {
            return Err(IrmcError::UnknownEndpoint { index: from });
        }
        // MAC check on every receiver message.
        out.push(Action::Charge(self.cfg.cost.hmac(32), "msg_mac"));
        match msg {
            ReceiverMsg::Move { sc, p } => self.on_receiver_move(from, sc, p, out),
            ReceiverMsg::Select { sc, collector } => {
                if collector >= self.cfg.n_senders {
                    return Err(IrmcError::UnknownEndpoint { index: collector });
                }
                self.collector_of.insert((sc, from), collector);
                if collector == self.me {
                    self.reship_bundles(sc, from, out);
                }
                Ok(())
            }
            ReceiverMsg::FetchRange { sc, first, count } => {
                if !(self.cfg.variant() == Variant::ReceiverCollect && self.cfg.dedup()) {
                    return Err(IrmcError::WrongVariant);
                }
                if count < 2 || count as u64 > self.cfg.capacity {
                    return Err(IrmcError::MalformedRange { sc, first, count: count as u64 });
                }
                let sub = self.sub(sc);
                let Some(msgs) = sub.rc_ranges.get(&first.0) else {
                    // Already GC'd (the window moved past it) or cut at a
                    // different boundary: the receiver will ask another
                    // voucher, so staying quiet is safe.
                    return Ok(());
                };
                if msgs.len() as u32 != count {
                    return Err(IrmcError::MalformedRange { sc, first, count: count as u64 });
                }
                let msgs = msgs.clone();
                let bytes: usize = msgs.iter().map(|m| m.wire_size()).sum();
                // MAC the re-shipped content for the requesting receiver;
                // it carries no signature — the receiver verifies it by
                // root comparison against the vouch quorum.
                out.push(Action::Charge(self.cfg.cost.hmac(bytes), "refetch_serve"));
                out.push(Action::ToReceiver {
                    to: from,
                    msg: ChannelMsg::RangeContent { sc, first, msgs },
                });
                Ok(())
            }
        }
    }

    /// Re-ships everything certified so far to a receiver that just
    /// selected this endpoint as collector (Fig 19 L39). Payloads are
    /// shared (`Arc`), so this clones pointers, not content.
    fn reship_bundles(&mut self, sc: Subchannel, to: usize, out: &mut Vec<Action<M>>) {
        let Some(sub) = self.subs.get_mut(&sc) else {
            return;
        };
        let mut shipments: Vec<Action<M>> = Vec::new();
        for (&p, (msg, shares)) in &sub.bundles {
            shipments.push(Action::Charge(self.cfg.cost.hmac(msg.wire_size()), "reship"));
            shipments.push(Action::ToReceiver {
                to,
                msg: ChannelMsg::Certificate {
                    sc,
                    p: Position(p),
                    msg: msg.clone(),
                    shares: shares.clone(),
                },
            });
        }
        for (&first, rb) in &sub.range_bundles {
            let bytes: usize = rb.msgs.iter().map(|m| m.wire_size()).sum();
            shipments.push(Action::Charge(self.cfg.cost.hmac(bytes), "reship"));
            shipments.push(Action::ToReceiver {
                to,
                msg: ChannelMsg::RangeContent { sc, first: Position(first), msgs: rb.msgs.clone() },
            });
            shipments.push(Action::Charge(self.cfg.cost.hmac(32), "reship"));
            shipments.push(Action::ToReceiver {
                to,
                msg: ChannelMsg::RangeCertificate {
                    sc,
                    first: Position(first),
                    count: rb.msgs.len() as u32,
                    root: rb.root,
                    shares: rb.shares.clone(),
                },
            });
            if let Some(flag) = sub.ranges.get_mut(&first).and_then(|i| i.shipped.get_mut(to)) {
                *flag = true;
            }
        }
        out.extend(shipments);
    }

    fn on_receiver_move(
        &mut self,
        from: usize,
        sc: Subchannel,
        p: Position,
        out: &mut Vec<Action<M>>,
    ) -> Result<(), IrmcError> {
        let fr = self.cfg.fr;
        let sub = self.sub(sc);
        match sub.receiver_starts.get_mut(from) {
            Some(prev) if p > *prev => *prev = p,
            Some(_) => return Ok(()),
            None => return Err(IrmcError::UnknownEndpoint { index: from }),
        }
        // New window start: the (fr + 1)-highest receiver request — at
        // least one correct receiver has permitted this shift (§3.2).
        // Selection on a reused scratch buffer instead of clone + sort.
        sub.starts_scratch.clear();
        sub.starts_scratch.extend_from_slice(&sub.receiver_starts);
        let (_, nth, _) = sub.starts_scratch.select_nth_unstable_by(fr, |a, b| b.cmp(a));
        let new_start = *nth;
        if sub.awin.advance_to(new_start) {
            sub.gc_below(new_start);
            sub.advance_hwm();
            out.push(Action::WindowMoved { sc, start: new_start });
            self.flush_blocked(sc, out);
        }
        Ok(())
    }

    /// Transmits queued sends that fit into the (moved) window.
    fn flush_blocked(&mut self, sc: Subchannel, out: &mut Vec<Action<M>>) {
        loop {
            let sub = self.sub(sc);
            let Some((&p, chunk)) = sub.blocked.iter().next() else {
                return;
            };
            let end = Position(p + chunk.len() as u64 - 1);
            if sub.awin.is_above(end) {
                return; // The chunk (or its tail) still waits for a shift.
            }
            let start = sub.awin.start().0;
            let Some(msgs) = sub.blocked.remove(&p) else {
                return; // Key vanished between peek and remove: impossible,
                        // but returning is safe (the chunk stays queued).
            };
            if end.0 < start {
                continue; // overtaken by the window; drop silently
            }
            let (f, chunk) = trim_below(p, msgs, start);
            out.push(Action::Unblocked { sc, p: Position(f) });
            self.transmit_range(sc, f, chunk, out);
        }
    }

    /// Performs the variant-specific submission of in-window content.
    fn transmit(&mut self, sc: Subchannel, p: Position, msg: M, out: &mut Vec<Action<M>>) {
        let Some(key) = self.key_of_sender(self.me) else {
            return; // `new` validated `me`; unreachable without a bad cfg.
        };
        let digest = slot_digest(sc, p, &msg.digest());
        // Hash the payload and produce one RSA signature.
        out.push(Action::Charge(
            self.cfg.cost.hmac(msg.wire_size()) + self.cfg.cost.rsa_sign(),
            "slot_sign",
        ));
        let sig = self.keyring.sign(key, &digest);
        match self.cfg.variant() {
            Variant::ReceiverCollect => {
                // Retain the content until the window moves past it so a
                // stalled window (healed partition) can be re-cast.
                self.sub(sc).content.insert(p.0, SlotContent::Single(Arc::new(msg.clone())));
                for r in 0..self.cfg.n_receivers {
                    out.push(Action::ToReceiver {
                        to: r,
                        msg: ChannelMsg::Send { sc, p, msg: msg.clone(), sig },
                    });
                }
            }
            Variant::SenderCollect => {
                let me = self.me;
                let content_digest = msg.digest();
                let sub = self.sub(sc);
                sub.content.insert(p.0, SlotContent::Single(Arc::new(msg)));
                sub.shares.entry(p.0).or_default().insert(me, (content_digest, sig));
                for s in 0..self.cfg.n_senders {
                    if s != me {
                        out.push(Action::ToPeerSender {
                            to: s,
                            msg: ChannelMsg::SigShare { sc, p, digest: content_digest, sig },
                        });
                    }
                }
                self.maybe_bundle(sc, p, out);
            }
        }
    }

    /// Submits an in-window contiguous range: hashes every payload, signs
    /// **one** digest over the range (Merkle root of the slot digests),
    /// and ships a single range message per destination.
    fn transmit_range(
        &mut self,
        sc: Subchannel,
        first: u64,
        mut msgs: Vec<M>,
        out: &mut Vec<Action<M>>,
    ) {
        match msgs.len() {
            0 => return,
            // Length 1 degenerates to the legacy single-slot messages so
            // mixed configurations stay byte-compatible.
            1 => return self.transmit(sc, Position(first), msgs.remove(0), out),
            _ => {}
        }
        let count = msgs.len() as u32;
        let leaves: Vec<Digest> = msgs.iter().map(|m| m.digest()).collect();
        let root = merkle_root(&leaves);
        let bytes: usize = msgs.iter().map(|m| m.wire_size()).sum();
        // Hash all payloads and build the tree.
        out.push(Action::Charge(
            self.cfg.cost.hmac(bytes) + self.cfg.cost.merkle(count as usize),
            "range_hash",
        ));
        let msgs = Arc::new(msgs);
        let mut shipped = vec![false; self.cfg.n_receivers];
        if self.cfg.variant() == Variant::SenderCollect && self.cfg.sc_overlap() {
            // §A.9: ship the raw content to the receivers this endpoint
            // collects for *before* spending the signature — content
            // carries no proof, so its WAN transfer overlaps both the
            // local RSA signing and the share exchange. The compact
            // shares-only certificate follows from maybe_bundle_range.
            for (r, was_shipped) in shipped.iter_mut().enumerate() {
                if self.collector_for(sc, r) == self.me {
                    *was_shipped = true;
                    out.push(Action::Charge(self.cfg.cost.hmac(bytes), "range_ship"));
                    out.push(Action::ToReceiver {
                        to: r,
                        msg: ChannelMsg::RangeContent {
                            sc,
                            first: Position(first),
                            msgs: msgs.clone(),
                        },
                    });
                }
            }
        }
        let Some(key) = self.key_of_sender(self.me) else {
            return; // `new` validated `me`; unreachable without a bad cfg.
        };
        let rd = range_digest(sc, Position(first), count, &root);
        if self.cfg.variant() == Variant::ReceiverCollect && self.cfg.dedup() {
            // Digest-only fan-in: only the rotated primary carrier signs
            // and ships the content; everyone else confirms the range with
            // a MAC-authenticated vouch, and everyone (carrier included)
            // retains the content until the window moves past it so a
            // receiver can refetch from any voucher if the carrier stalls.
            let carrier = carrier_for(sc, Position(first), self.cfg.n_senders);
            self.sub(sc).rc_ranges.insert(first, msgs.clone());
            if carrier == self.me {
                // One RSA signature for the whole range.
                out.push(Action::Charge(self.cfg.cost.rsa_sign(), "range_sign"));
                let sig = self.keyring.sign(key, &rd);
                for r in 0..self.cfg.n_receivers {
                    out.push(Action::ToReceiver {
                        to: r,
                        msg: ChannelMsg::SendRange {
                            sc,
                            first: Position(first),
                            msgs: msgs.clone(),
                            sig,
                        },
                    });
                }
            } else {
                // MAC over the fixed-size vouch statement — no signature:
                // the vouch is consumed by the receiving endpoint only,
                // never forwarded as proof (IRMC-RC trust model, Fig 18).
                out.push(Action::Charge(self.cfg.cost.hmac(52), "vouch_mac"));
                for r in 0..self.cfg.n_receivers {
                    out.push(Action::ToReceiver {
                        to: r,
                        msg: ChannelMsg::RangeVouch { sc, first: Position(first), count, root },
                    });
                }
            }
            return;
        }
        // One RSA signature for the whole range.
        out.push(Action::Charge(self.cfg.cost.rsa_sign(), "range_sign"));
        let sig = self.keyring.sign(key, &rd);
        match self.cfg.variant() {
            Variant::ReceiverCollect => {
                // Retained for the stalled-window re-cast (see rc_ranges).
                self.sub(sc).rc_ranges.insert(first, msgs.clone());
                for r in 0..self.cfg.n_receivers {
                    out.push(Action::ToReceiver {
                        to: r,
                        msg: ChannelMsg::SendRange {
                            sc,
                            first: Position(first),
                            msgs: msgs.clone(),
                            sig,
                        },
                    });
                }
            }
            Variant::SenderCollect => {
                let me = self.me;
                let sub = self.sub(sc);
                for (i, _) in msgs.iter().enumerate() {
                    sub.content.insert(
                        first + i as u64,
                        SlotContent::InRange { msgs: msgs.clone(), idx: i as u32 },
                    );
                }
                sub.range_shares
                    .entry((first, root))
                    .or_insert_with(|| RangeShareSet { count, sigs: BTreeMap::new() })
                    .sigs
                    .insert(me, sig);
                for s in 0..self.cfg.n_senders {
                    if s != me {
                        out.push(Action::ToPeerSender {
                            to: s,
                            msg: ChannelMsg::RangeShare {
                                sc,
                                first: Position(first),
                                count,
                                root,
                                sig,
                            },
                        });
                    }
                }
                let sub = self.sub(sc);
                sub.ranges.insert(first, RangeInfo { msgs, root, shipped });
                self.maybe_bundle_range(sc, first, root, out);
            }
        }
    }

    /// Handles an intra-group message from peer sender `from` (IRMC-SC).
    ///
    /// `Err` means the frame was rejected (and why); rejections are
    /// expected under Byzantine peers — callers discard the frame and may
    /// count or log the reason.
    pub fn on_peer_message(
        &mut self,
        from: usize,
        msg: ChannelMsg<M>,
        out: &mut Vec<Action<M>>,
    ) -> Result<(), IrmcError> {
        if from >= self.cfg.n_senders {
            return Err(IrmcError::UnknownEndpoint { index: from });
        }
        if from == self.me {
            return Err(IrmcError::UnexpectedFrame);
        }
        if self.cfg.variant() != Variant::SenderCollect {
            return Err(IrmcError::WrongVariant);
        }
        match msg {
            ChannelMsg::SigShare { sc, p, digest, sig } => {
                let Some(key) = self.key_of_sender(from) else {
                    return Err(IrmcError::UnknownEndpoint { index: from });
                };
                // Verify the peer's share signature.
                out.push(Action::Charge(self.cfg.cost.rsa_verify(), "share_verify"));
                let slot = slot_digest(sc, p, &digest);
                if !self.keyring.verify(key, &slot, &sig) {
                    return Err(IrmcError::BadSignature { sc, p });
                }
                let sub = self.sub(sc);
                if sub.awin.is_below(p) {
                    return Ok(()); // Late duplicate; normal.
                }
                // Only the first share per (position, sender) counts
                // (Fig 19 L17).
                sub.shares.entry(p.0).or_default().entry(from).or_insert((digest, sig));
                self.maybe_bundle(sc, p, out);
                Ok(())
            }
            ChannelMsg::RangeShare { sc, first, count, root, sig } => {
                if count < 2 || count as u64 > self.cfg.capacity {
                    return Err(IrmcError::MalformedRange { sc, first, count: count as u64 });
                }
                let Some(key) = self.key_of_sender(from) else {
                    return Err(IrmcError::UnknownEndpoint { index: from });
                };
                // One verification vouches for the whole range.
                out.push(Action::Charge(self.cfg.cost.rsa_verify(), "share_verify"));
                let rd = range_digest(sc, first, count, &root);
                if !self.keyring.verify(key, &rd, &sig) {
                    return Err(IrmcError::BadSignature { sc, p: first });
                }
                let sub = self.sub(sc);
                if first.0 + count as u64 <= sub.awin.start().0 {
                    return Ok(()); // Entirely below the window.
                }
                if first.0 >= sub.awin.end().0 + sub.awin.capacity() {
                    // Absurdly far above it (memory guard).
                    return Err(IrmcError::OutOfWindow { sc, p: first });
                }
                let set = sub
                    .range_shares
                    .entry((first.0, root))
                    .or_insert_with(|| RangeShareSet { count, sigs: BTreeMap::new() });
                if set.count != count {
                    // Same root, different length: bogus.
                    return Err(IrmcError::MalformedRange { sc, first, count: count as u64 });
                }
                set.sigs.entry(from).or_insert(sig);
                self.maybe_bundle_range(sc, first.0, root, out);
                Ok(())
            }
            // Receiver-bound frames have no business on the peer link; an
            // explicit list (not `_`) so a new wire variant must be triaged.
            ChannelMsg::Send { .. }
            | ChannelMsg::SendRange { .. }
            | ChannelMsg::Certificate { .. }
            | ChannelMsg::RangeVouch { .. }
            | ChannelMsg::RangeContent { .. }
            | ChannelMsg::RangeCertificate { .. }
            | ChannelMsg::Progress { .. }
            | ChannelMsg::Move { .. } => Err(IrmcError::UnexpectedFrame),
        }
    }

    /// Assembles and ships a certificate once `fs + 1` matching shares and
    /// the content itself are present (Fig 19 L22-24).
    fn maybe_bundle(&mut self, sc: Subchannel, p: Position, out: &mut Vec<Action<M>>) {
        let fs = self.cfg.fs;
        let me = self.me;
        let n_receivers = self.cfg.n_receivers;
        let sub = self.sub(sc);
        if sub.certified(p.0) {
            return;
        }
        let Some(content) = sub.content.get(&p.0) else {
            return;
        };
        let Some(want) = content.get().map(|m| m.digest()) else {
            return;
        };
        let Some(shares) = sub.shares.get(&p.0) else {
            return;
        };
        let mut matching: Vec<(usize, Signature)> = shares
            .iter()
            .filter(|(_, (d, _))| *d == want)
            .map(|(s, (_, sig))| (*s, *sig))
            .collect();
        if matching.len() < fs + 1 {
            return;
        }
        matching.sort_by_key(|(s, _)| *s);
        matching.truncate(fs + 1);
        let vec: Vec<Signature> = matching.into_iter().map(|(_, sig)| sig).collect();
        let Some(arc) = content.arc() else {
            return;
        };
        sub.bundles.insert(p.0, (arc.clone(), vec.clone()));
        sub.advance_hwm();

        let targets: Vec<usize> =
            (0..n_receivers).filter(|r| self.collector_for(sc, *r) == me).collect();
        for r in targets {
            out.push(Action::Charge(self.cfg.cost.hmac(arc.wire_size()), "bundle_mac"));
            out.push(Action::ToReceiver {
                to: r,
                msg: ChannelMsg::Certificate { sc, p, msg: arc.clone(), shares: vec.clone() },
            });
        }
    }

    /// Assembles and ships a **range** certificate once `fs + 1` shares
    /// over this endpoint's own `(first, root)` statement are present:
    /// content that was already shipped (§A.9 overlap) is not re-shipped —
    /// only the compact shares-only certificate goes out.
    fn maybe_bundle_range(
        &mut self,
        sc: Subchannel,
        first: u64,
        root: Digest,
        out: &mut Vec<Action<M>>,
    ) {
        let fs = self.cfg.fs;
        let me = self.me;
        let n_receivers = self.cfg.n_receivers;
        let sub = self.sub(sc);
        if sub.range_bundles.contains_key(&first) {
            return;
        }
        let Some(info) = sub.ranges.get(&first) else {
            return; // Only bundle over content we submitted ourselves.
        };
        if info.root != root {
            return;
        }
        let Some(set) = sub.range_shares.get(&(first, root)) else {
            return;
        };
        if set.sigs.len() < fs + 1 {
            return;
        }
        let mut matching: Vec<(usize, Signature)> =
            set.sigs.iter().map(|(s, sig)| (*s, *sig)).collect();
        matching.sort_by_key(|(s, _)| *s);
        matching.truncate(fs + 1);
        let shares: Vec<Signature> = matching.into_iter().map(|(_, sig)| sig).collect();
        let msgs = info.msgs.clone();
        let count = msgs.len() as u32;
        let bytes: usize = msgs.iter().map(|m| m.wire_size()).sum();
        sub.range_bundles
            .insert(first, RangeBundle { msgs: msgs.clone(), root, shares: shares.clone() });
        sub.advance_hwm();

        let targets: Vec<usize> =
            (0..n_receivers).filter(|r| self.collector_for(sc, *r) == me).collect();
        for r in targets {
            let sub = self.sub(sc);
            let needs_content = sub
                .ranges
                .get_mut(&first)
                .and_then(|i| i.shipped.get_mut(r))
                .map(|b| !std::mem::replace(b, true));
            if needs_content.unwrap_or(true) {
                out.push(Action::Charge(self.cfg.cost.hmac(bytes), "bundle_mac"));
                out.push(Action::ToReceiver {
                    to: r,
                    msg: ChannelMsg::RangeContent {
                        sc,
                        first: Position(first),
                        msgs: msgs.clone(),
                    },
                });
            }
            out.push(Action::Charge(self.cfg.cost.hmac(32), "bundle_mac"));
            out.push(Action::ToReceiver {
                to: r,
                msg: ChannelMsg::RangeCertificate {
                    sc,
                    first: Position(first),
                    count,
                    root,
                    shares: shares.clone(),
                },
            });
        }
    }

    /// Periodic driver: flushes expired linger buffers (both variants) and,
    /// for IRMC-SC, emits `Progress` announcements from the cached
    /// gap-free certified watermark (Fig 19 L26-30) and falls back to
    /// per-slot shares when range certification stalls (diverged range
    /// boundaries, e.g. after a checkpoint-restore replay).
    pub fn tick(&mut self, now: SimTime, out: &mut Vec<Action<M>>) {
        if self.cfg.range_linger > SimTime::ZERO {
            let due: Vec<Subchannel> = self
                .subs
                .iter()
                .filter(|(_, s)| s.pending.as_ref().is_some_and(|r| r.deadline <= now))
                .map(|(&sc, _)| sc)
                .collect();
            for sc in due {
                self.flush_pending(sc, out);
            }
        }
        if self.cfg.variant() != Variant::SenderCollect {
            self.rc_recast_tick(out);
            return;
        }
        self.fallback_stalled(out);
        let mut positions = Vec::new();
        for (&sc, sub) in &self.subs {
            if let Some(prog) = sub.progress() {
                positions.push((sc, prog));
            }
        }
        positions.sort_unstable();
        if positions.is_empty() || positions == self.last_progress {
            return; // Nothing new to announce; stay quiet.
        }
        self.last_progress = positions.clone();
        out.push(Action::Charge(self.cfg.cost.hmac(positions.len() * 16), "progress_mac"));
        for r in 0..self.cfg.n_receivers {
            out.push(Action::ToReceiver {
                to: r,
                msg: ChannelMsg::Progress { positions: positions.clone() },
            });
        }
    }

    /// Liveness net for diverged range boundaries: when the certified
    /// watermark has not moved for two consecutive ticks while submitted
    /// content sits uncertified, re-share the stalled slots with legacy
    /// per-slot `SigShare`s — those match across senders regardless of
    /// how each cut its ranges.
    fn fallback_stalled(&mut self, out: &mut Vec<Action<M>>) {
        let cap = self.range_cap() as u64;
        let me = self.me;
        let Some(me_key) = self.key_of_sender(me) else {
            return; // `new` validated `me`; unreachable without a bad cfg.
        };
        let mut work: Vec<(Subchannel, u64, u64)> = Vec::new();
        for (&sc, sub) in &mut self.subs {
            sub.advance_hwm();
            let highest = sub.content.keys().next_back().copied().unwrap_or(0);
            let from = sub.certified_hwm.max(sub.awin.start().0 - 1) + 1;
            if highest < from {
                sub.stalled_ticks = 0;
                sub.last_tick_hwm = sub.certified_hwm;
                continue;
            }
            if sub.certified_hwm == sub.last_tick_hwm {
                sub.stalled_ticks = sub.stalled_ticks.saturating_add(1);
            } else {
                sub.stalled_ticks = 0;
            }
            sub.last_tick_hwm = sub.certified_hwm;
            if sub.stalled_ticks >= 2 {
                sub.stalled_ticks = 0;
                work.push((sc, from, highest.min(from + cap - 1)));
            }
        }
        for (sc, from, to) in work {
            for p in from..=to {
                let sub = self.sub(sc);
                if sub.certified(p) {
                    continue;
                }
                let Some(digest) = sub.content.get(&p).and_then(|c| c.get()).map(|m| m.digest())
                else {
                    continue;
                };
                let slot = slot_digest(sc, Position(p), &digest);
                out.push(Action::Charge(self.cfg.cost.rsa_sign(), "slot_sign"));
                let sig = self.keyring.sign(me_key, &slot);
                let sub = self.sub(sc);
                sub.shares.entry(p).or_default().insert(me, (digest, sig));
                for s in 0..self.cfg.n_senders {
                    if s != me {
                        out.push(Action::ToPeerSender {
                            to: s,
                            msg: ChannelMsg::SigShare { sc, p: Position(p), digest, sig },
                        });
                    }
                }
                self.maybe_bundle(sc, Position(p), out);
            }
        }
    }

    /// RC liveness net for severed links: when the window has sat still
    /// for [`RC_RECAST_TICKS`] consecutive ticks with undelivered
    /// content, re-cast the retained in-window slots. The original casts
    /// went out exactly once at submit time; a partition that swallowed
    /// them would otherwise wedge the channel forever, because receivers
    /// that never saw a vouch cannot even ask to fetch.
    fn rc_recast_tick(&mut self, out: &mut Vec<Action<M>>) {
        let mut due: Vec<Subchannel> = Vec::new();
        for (&sc, sub) in &mut self.subs {
            let start = sub.awin.start().0;
            let pending = !sub.blocked.is_empty()
                || sub.rc_ranges.iter().any(|(&f, msgs)| f + msgs.len() as u64 > start)
                || sub.content.range(start..).next().is_some();
            if !pending {
                sub.rc_stall_ticks = 0;
                sub.rc_last_start = start;
                continue;
            }
            if start != sub.rc_last_start {
                sub.rc_last_start = start;
                sub.rc_stall_ticks = 0;
                continue;
            }
            sub.rc_stall_ticks = sub.rc_stall_ticks.saturating_add(1);
            if sub.rc_stall_ticks >= RC_RECAST_TICKS {
                sub.rc_stall_ticks = 0;
                due.push(sc);
            }
        }
        for sc in due {
            self.recast_sub(sc, out);
        }
    }

    /// Re-casts this endpoint's retained in-window content on `sc` to
    /// every receiver whose last announced window start still covers it.
    /// Receivers treat duplicates idempotently, and a receiver that
    /// already moved past a slot re-announces its window start on the
    /// below-window duplicate, so recasting converges rather than loops.
    fn recast_sub(&mut self, sc: Subchannel, out: &mut Vec<Action<M>>) {
        let Some(me_key) = self.key_of_sender(self.me) else {
            return; // `new` validated `me`; unreachable without a bad cfg.
        };
        let me = self.me;
        let n_senders = self.cfg.n_senders;
        let n_receivers = self.cfg.n_receivers;
        let dedup = self.cfg.dedup();
        let sub = self.sub(sc);
        let start = sub.awin.start().0;
        let ranges: Vec<(u64, Arc<Vec<M>>)> = sub
            .rc_ranges
            .iter()
            .filter(|&(&f, msgs)| f + msgs.len() as u64 > start)
            .map(|(&f, msgs)| (f, msgs.clone()))
            .collect();
        let singles: Vec<(u64, Arc<M>)> = sub
            .content
            .range(start..)
            .filter_map(|(&p, c)| match c {
                SlotContent::Single(m) => Some((p, m.clone())),
                SlotContent::InRange { .. } => None,
            })
            .collect();
        let starts = sub.receiver_starts.clone();
        // Only receivers whose announced window still reaches the chunk:
        // the rest already delivered it (their `Move` told us so).
        let targets = |last: u64| -> Vec<usize> {
            (0..n_receivers).filter(|&r| starts.get(r).is_none_or(|s| s.0 <= last)).collect()
        };
        for (first, msgs) in ranges {
            let last = first + msgs.len() as u64 - 1;
            let to = targets(last);
            if to.is_empty() {
                continue;
            }
            let count = msgs.len() as u32;
            let leaves: Vec<Digest> = msgs.iter().map(|m| m.digest()).collect();
            let root = merkle_root(&leaves);
            let bytes: usize = msgs.iter().map(|m| m.wire_size()).sum();
            out.push(Action::Charge(
                self.cfg.cost.hmac(bytes) + self.cfg.cost.merkle(count as usize),
                crate::OP_RECAST,
            ));
            if dedup && carrier_for(sc, Position(first), n_senders) != me {
                // Not the carrier: repeat the digest-only vouch. The
                // receiver's carrier-supervision timer escalates to a
                // FetchRange against us if the carrier stays dark.
                out.push(Action::Charge(self.cfg.cost.hmac(52), crate::OP_RECAST));
                for r in to {
                    out.push(Action::ToReceiver {
                        to: r,
                        msg: ChannelMsg::RangeVouch { sc, first: Position(first), count, root },
                    });
                }
            } else {
                let rd = range_digest(sc, Position(first), count, &root);
                out.push(Action::Charge(self.cfg.cost.rsa_sign(), crate::OP_RECAST));
                let sig = self.keyring.sign(me_key, &rd);
                for r in to {
                    out.push(Action::ToReceiver {
                        to: r,
                        msg: ChannelMsg::SendRange {
                            sc,
                            first: Position(first),
                            msgs: msgs.clone(),
                            sig,
                        },
                    });
                }
            }
        }
        for (p, msg) in singles {
            let to = targets(p);
            if to.is_empty() {
                continue;
            }
            let digest = slot_digest(sc, Position(p), &msg.digest());
            out.push(Action::Charge(
                self.cfg.cost.hmac(msg.wire_size()) + self.cfg.cost.rsa_sign(),
                crate::OP_RECAST,
            ));
            let sig = self.keyring.sign(me_key, &digest);
            for r in to {
                out.push(Action::ToReceiver {
                    to: r,
                    msg: ChannelMsg::Send { sc, p: Position(p), msg: (*msg).clone(), sig },
                });
            }
        }
    }

    /// Whether any subchannel still holds content the receiver quorum has
    /// not acknowledged by moving the window past it (or sends queued
    /// behind the window). Actors keep the RC recast tick armed only
    /// while this is true, so idle simulations still quiesce.
    pub fn has_unacked(&self) -> bool {
        self.subs.values().any(|sub| {
            let start = sub.awin.start().0;
            !sub.blocked.is_empty()
                || sub.pending.is_some()
                || sub.rc_ranges.iter().any(|(&f, msgs)| f + msgs.len() as u64 > start)
                || sub.content.range(start..).next().is_some()
        })
    }

    /// Number of slots the receiver side owes progress on: transmitted
    /// content the window has not moved past, plus sends queued behind a
    /// full window — the backpressure gauge fed to the health watchdog.
    /// The linger buffer is deliberately *excluded*: slots batching
    /// toward a range boundary are this sender's own scheduling choice,
    /// and counting them makes every low-rate range-certified channel
    /// look permanently stalled. Retained range copies and per-slot
    /// content can cover the same positions, so the larger of the two
    /// counts per subchannel is used.
    pub fn unacked_slots(&self) -> u64 {
        self.subs
            .values()
            .map(|sub| {
                let start = sub.awin.start().0;
                let blocked: u64 = sub.blocked.values().map(|c| c.len() as u64).sum();
                let retained = sub.content.range(start..).count() as u64;
                let ranged: u64 = sub
                    .rc_ranges
                    .iter()
                    .map(|(&f, msgs)| (f + msgs.len() as u64).saturating_sub(start.max(f)))
                    .sum();
                blocked + retained.max(ranged)
            })
            .sum()
    }

    fn key_of_sender(&self, idx: usize) -> Option<spider_crypto::KeyId> {
        self.cfg.sender_keys.get(idx).copied()
    }
}

/// Drops the slots of `msgs` that fall below window start `start`;
/// returns the trimmed first position and content.
fn trim_below<M>(first: u64, mut msgs: Vec<M>, start: u64) -> (u64, Vec<M>) {
    if first >= start {
        return (first, msgs);
    }
    let skip = ((start - first) as usize).min(msgs.len());
    msgs.drain(..skip);
    (first + skip as u64, msgs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests_support::Blob;
    use spider_crypto::Digestible as _;

    fn cfg(variant: Variant) -> IrmcConfig {
        IrmcConfig::new(variant, 3, 1, 3, 1, 4).with_cost(spider_crypto::CostModel::zero())
    }

    fn sender(variant: Variant, me: usize) -> SenderEndpoint<Blob> {
        SenderEndpoint::new(cfg(variant), me, Keyring::new(5))
    }

    #[test]
    fn rc_send_fans_out_to_all_receivers() {
        let mut s = sender(Variant::ReceiverCollect, 0);
        let mut out = Vec::new();
        let st = s.send_batch(7, Position(1), vec![Blob::new(b"m")], &mut out);
        assert_eq!(st, SendStatus::Sent);
        let sends = out
            .iter()
            .filter(|a| matches!(a, Action::ToReceiver { msg: ChannelMsg::Send { .. }, .. }))
            .count();
        assert_eq!(sends, 3);
    }

    #[test]
    fn send_above_window_blocks_and_flushes_on_move() {
        let mut s = sender(Variant::ReceiverCollect, 0);
        let mut out = Vec::new();
        // Window is [1, 4]; position 6 must block.
        assert_eq!(
            s.send_batch(0, Position(6), vec![Blob::new(b"m")], &mut out),
            SendStatus::Blocked
        );
        assert!(out.iter().all(|a| !matches!(a, Action::ToReceiver { .. })));

        // fr + 1 = 2 receivers move their windows to 3: window = [3, 6].
        out.clear();
        let _ = s.on_receiver_message(0, ReceiverMsg::Move { sc: 0, p: Position(3) }, &mut out);
        assert!(
            !out.iter().any(|a| matches!(a, Action::Unblocked { .. })),
            "one receiver is not enough (fr = 1)"
        );
        let _ = s.on_receiver_message(1, ReceiverMsg::Move { sc: 0, p: Position(3) }, &mut out);
        assert!(out.iter().any(|a| matches!(a, Action::Unblocked { p, .. } if *p == Position(6))));
        assert!(out.iter().any(|a| matches!(a, Action::ToReceiver { .. })));
        assert_eq!(s.window(0).start(), Position(3));
    }

    #[test]
    fn send_below_window_reports_too_old() {
        let mut s = sender(Variant::ReceiverCollect, 0);
        let mut out = Vec::new();
        let _ = s.on_receiver_message(0, ReceiverMsg::Move { sc: 0, p: Position(5) }, &mut out);
        let _ = s.on_receiver_message(1, ReceiverMsg::Move { sc: 0, p: Position(5) }, &mut out);
        assert_eq!(
            s.send_batch(0, Position(2), vec![Blob::new(b"m")], &mut out),
            SendStatus::TooOld(Position(5))
        );
    }

    #[test]
    fn stale_receiver_moves_are_ignored() {
        let mut s = sender(Variant::ReceiverCollect, 0);
        let mut out = Vec::new();
        let _ = s.on_receiver_message(0, ReceiverMsg::Move { sc: 0, p: Position(5) }, &mut out);
        let _ = s.on_receiver_message(0, ReceiverMsg::Move { sc: 0, p: Position(2) }, &mut out);
        let _ = s.on_receiver_message(1, ReceiverMsg::Move { sc: 0, p: Position(5) }, &mut out);
        assert_eq!(s.window(0).start(), Position(5), "regression discarded");
    }

    #[test]
    fn sc_send_exchanges_shares_then_certificate() {
        let ring = Keyring::new(5);
        let mut s0 = SenderEndpoint::<Blob>::new(cfg(Variant::SenderCollect), 0, ring.clone());
        let mut s1 = SenderEndpoint::<Blob>::new(cfg(Variant::SenderCollect), 1, ring.clone());
        let mut out0 = Vec::new();
        let mut out1 = Vec::new();
        let m = Blob::new(b"content");
        s0.send_batch(0, Position(1), vec![m.clone()], &mut out0);
        s1.send_batch(0, Position(1), vec![m.clone()], &mut out1);
        // No certificates yet (each has only its own share; fs + 1 = 2).
        assert!(!out0
            .iter()
            .any(|a| matches!(a, Action::ToReceiver { msg: ChannelMsg::Certificate { .. }, .. })));
        // Deliver s1's share to s0.
        let share = out1
            .iter()
            .find_map(|a| match a {
                Action::ToPeerSender { to: 0, msg } => Some(msg.clone()),
                _ => None,
            })
            .expect("share for s0");
        let mut out = Vec::new();
        let _ = s0.on_peer_message(1, share, &mut out);
        // s0 is the default collector for receiver 0 (0 % 3) and ships one
        // certificate there.
        let certs: Vec<usize> = out
            .iter()
            .filter_map(|a| match a {
                Action::ToReceiver { to, msg: ChannelMsg::Certificate { shares, .. } } => {
                    assert_eq!(shares.len(), 2);
                    Some(*to)
                }
                _ => None,
            })
            .collect();
        assert_eq!(certs, vec![0]);
    }

    #[test]
    fn sc_mismatching_share_does_not_bundle() {
        let ring = Keyring::new(5);
        let mut s0 = SenderEndpoint::<Blob>::new(cfg(Variant::SenderCollect), 0, ring.clone());
        let mut out = Vec::new();
        s0.send_batch(0, Position(1), vec![Blob::new(b"good")], &mut out);
        out.clear();
        // A (faulty) peer shares a signature over *different* content.
        let bad_digest = Blob::new(b"evil").digest();
        let slot = slot_digest(0, Position(1), &bad_digest);
        let sig = ring.sign(spider_crypto::KeyId(1001), &slot);
        let _ = s0.on_peer_message(
            1,
            ChannelMsg::SigShare { sc: 0, p: Position(1), digest: bad_digest, sig },
            &mut out,
        );
        assert!(!out
            .iter()
            .any(|a| matches!(a, Action::ToReceiver { msg: ChannelMsg::Certificate { .. }, .. })));
    }

    #[test]
    fn sc_select_reassigns_collector_and_reships() {
        let ring = Keyring::new(5);
        let mut s1 = SenderEndpoint::<Blob>::new(cfg(Variant::SenderCollect), 1, ring.clone());
        let mut s0_share_out = Vec::new();
        let mut s0 = SenderEndpoint::<Blob>::new(cfg(Variant::SenderCollect), 0, ring.clone());
        let m = Blob::new(b"c");
        s0.send_batch(0, Position(1), vec![m.clone()], &mut s0_share_out);
        let mut out = Vec::new();
        s1.send_batch(0, Position(1), vec![m], &mut out);
        let share = s0_share_out
            .iter()
            .find_map(|a| match a {
                Action::ToPeerSender { to: 1, msg } => Some(msg.clone()),
                _ => None,
            })
            .unwrap();
        out.clear();
        let _ = s1.on_peer_message(0, share, &mut out);
        // s1 is default collector for receiver 1 only.
        assert!(out.iter().any(|a| matches!(
            a,
            Action::ToReceiver { to: 1, msg: ChannelMsg::Certificate { .. } }
        )));
        // Receiver 0 switches its collector to s1: the bundle re-ships.
        out.clear();
        let _ = s1.on_receiver_message(0, ReceiverMsg::Select { sc: 0, collector: 1 }, &mut out);
        assert!(out.iter().any(|a| matches!(
            a,
            Action::ToReceiver { to: 0, msg: ChannelMsg::Certificate { .. } }
        )));
    }

    #[test]
    fn sc_tick_reports_gap_free_progress() {
        let ring = Keyring::new(5);
        let c = cfg(Variant::SenderCollect);
        let mut senders: Vec<SenderEndpoint<Blob>> =
            (0..3).map(|i| SenderEndpoint::new(c.clone(), i, ring.clone())).collect();
        // Certify positions 1 and 3 (gap at 2) on sender 0.
        for p in [1u64, 3] {
            let m = Blob::new(format!("m{p}").as_bytes());
            let mut outs: Vec<Vec<Action<Blob>>> = vec![Vec::new(); 3];
            for (i, s) in senders.iter_mut().enumerate() {
                s.send_batch(0, Position(p), vec![m.clone()], &mut outs[i]);
            }
            // Deliver all shares to everyone.
            for (i, out) in outs.iter().enumerate() {
                let shares: Vec<(usize, ChannelMsg<Blob>)> = out
                    .iter()
                    .filter_map(|a| match a {
                        Action::ToPeerSender { to, msg } => Some((*to, msg.clone())),
                        _ => None,
                    })
                    .collect();
                for (to, msg) in shares {
                    let mut sink = Vec::new();
                    let _ = senders[to].on_peer_message(i, msg, &mut sink);
                }
            }
        }
        let mut out = Vec::new();
        senders[0].tick(SimTime::ZERO, &mut out);
        let progress = out
            .iter()
            .find_map(|a| match a {
                Action::ToReceiver { msg: ChannelMsg::Progress { positions }, .. } => {
                    Some(positions.clone())
                }
                _ => None,
            })
            .expect("progress announced");
        assert_eq!(progress, vec![(0, Position(1))], "stops at the gap");
    }

    // ------------------------------------------------------------------
    // Range certification
    // ------------------------------------------------------------------

    fn range_cfg(variant: Variant, capacity: u64, max_range: usize) -> IrmcConfig {
        IrmcConfig::new(variant, 3, 1, 3, 1, capacity)
            .with_cost(spider_crypto::CostModel::zero())
            .with_range(max_range, SimTime::ZERO)
    }

    fn blobs(first: u64, n: u64) -> Vec<Blob> {
        (first..first + n).map(|i| Blob::new(format!("m{i}").as_bytes())).collect()
    }

    #[test]
    fn rc_send_many_ships_one_signed_range_per_receiver() {
        let mut s: SenderEndpoint<Blob> =
            SenderEndpoint::new(range_cfg(Variant::ReceiverCollect, 16, 8), 0, Keyring::new(5));
        let mut out = Vec::new();
        let st = s.send_batch(0, Position(1), blobs(1, 5), &mut out);
        assert_eq!(st, SendStatus::Sent);
        let ranges: Vec<u64> = out
            .iter()
            .filter_map(|a| match a {
                Action::ToReceiver { msg: ChannelMsg::SendRange { first, msgs, .. }, .. } => {
                    assert_eq!(msgs.len(), 5);
                    Some(first.0)
                }
                _ => None,
            })
            .collect();
        assert_eq!(ranges, vec![1, 1, 1], "one range message per receiver");
        assert!(!out
            .iter()
            .any(|a| matches!(a, Action::ToReceiver { msg: ChannelMsg::Send { .. }, .. })));
    }

    #[test]
    fn send_many_chunks_at_max_range() {
        let mut s: SenderEndpoint<Blob> =
            SenderEndpoint::new(range_cfg(Variant::ReceiverCollect, 32, 4), 0, Keyring::new(5));
        let mut out = Vec::new();
        s.send_batch(0, Position(1), blobs(1, 10), &mut out);
        let mut firsts: Vec<(u64, usize)> = out
            .iter()
            .filter_map(|a| match a {
                Action::ToReceiver { to: 0, msg: ChannelMsg::SendRange { first, msgs, .. } } => {
                    Some((first.0, msgs.len()))
                }
                _ => None,
            })
            .collect();
        firsts.sort_unstable();
        assert_eq!(firsts, vec![(1, 4), (5, 4), (9, 2)], "deterministic chunking from `first`");
    }

    #[test]
    fn singleton_batch_degenerates_to_legacy_per_slot_frame() {
        let ring = Keyring::new(5);
        let c = range_cfg(Variant::ReceiverCollect, 16, 8);
        let mut ep: SenderEndpoint<Blob> = SenderEndpoint::new(c, 0, ring);
        let mut out = Vec::new();
        ep.send_batch(0, Position(1), vec![Blob::new(b"solo")], &mut out);
        assert!(
            out.iter()
                .any(|a| matches!(a, Action::ToReceiver { msg: ChannelMsg::Send { .. }, .. })),
            "a singleton uses the legacy per-slot frame, not a range"
        );
    }

    // ------------------------------------------------------------------
    // RC digest-only fan-in (dedup)
    // ------------------------------------------------------------------

    fn dedup_cfg(capacity: u64, max_range: usize) -> IrmcConfig {
        range_cfg(Variant::ReceiverCollect, capacity, max_range)
            .with_mode(crate::ChannelMode::ReliableCast { dedup: true })
    }

    #[test]
    fn dedup_carrier_ships_content_others_vouch() {
        let ring = Keyring::new(5);
        let c = dedup_cfg(16, 8);
        let msgs = blobs(1, 4);
        let carrier = carrier_for(0, Position(1), c.n_senders);
        for me in 0..c.n_senders {
            let mut s: SenderEndpoint<Blob> = SenderEndpoint::new(c.clone(), me, ring.clone());
            let mut out = Vec::new();
            s.send_batch(0, Position(1), msgs.clone(), &mut out);
            let ships_content = out
                .iter()
                .any(|a| matches!(a, Action::ToReceiver { msg: ChannelMsg::SendRange { .. }, .. }));
            let vouches = out
                .iter()
                .filter(|a| {
                    matches!(a, Action::ToReceiver { msg: ChannelMsg::RangeVouch { .. }, .. })
                })
                .count();
            if me == carrier {
                assert!(ships_content, "the carrier ships the signed content");
                assert_eq!(vouches, 0);
            } else {
                assert!(!ships_content, "non-carriers never ship content up front");
                assert_eq!(vouches, c.n_receivers, "one digest-only vouch per receiver");
            }
        }
    }

    #[test]
    fn dedup_vouch_carries_the_carrier_root() {
        let ring = Keyring::new(5);
        let c = dedup_cfg(16, 8);
        let msgs = blobs(1, 4);
        let carrier = carrier_for(0, Position(1), c.n_senders);
        let voucher = (carrier + 1) % c.n_senders;
        let mut s: SenderEndpoint<Blob> = SenderEndpoint::new(c, voucher, ring);
        let mut out = Vec::new();
        s.send_batch(0, Position(1), msgs.clone(), &mut out);
        let leaves: Vec<Digest> = msgs.iter().map(|m| m.digest()).collect();
        let want = merkle_root(&leaves);
        assert!(out.iter().any(|a| matches!(
            a,
            Action::ToReceiver { msg: ChannelMsg::RangeVouch { root, count: 4, .. }, .. }
                if *root == want
        )));
    }

    #[test]
    fn dedup_voucher_serves_fetch_range() {
        let ring = Keyring::new(5);
        let c = dedup_cfg(16, 8);
        let carrier = carrier_for(0, Position(1), c.n_senders);
        let voucher = (carrier + 1) % c.n_senders;
        let mut s: SenderEndpoint<Blob> = SenderEndpoint::new(c, voucher, ring);
        let mut out = Vec::new();
        s.send_batch(0, Position(1), blobs(1, 4), &mut out);
        out.clear();
        let res = s.on_receiver_message(
            2,
            ReceiverMsg::FetchRange { sc: 0, first: Position(1), count: 4 },
            &mut out,
        );
        assert_eq!(res, Ok(()));
        assert!(out.iter().any(|a| matches!(
            a,
            Action::ToReceiver { to: 2, msg: ChannelMsg::RangeContent { first: Position(1), msgs, .. } }
                if msgs.len() == 4
        )));
        // A mismatched count is a malformed request, not a crash.
        out.clear();
        let res = s.on_receiver_message(
            2,
            ReceiverMsg::FetchRange { sc: 0, first: Position(1), count: 3 },
            &mut out,
        );
        assert!(matches!(res, Err(IrmcError::MalformedRange { .. })));
        // An unknown (already GC'd) range is served with silence.
        let res = s.on_receiver_message(
            2,
            ReceiverMsg::FetchRange { sc: 0, first: Position(9), count: 4 },
            &mut out,
        );
        assert_eq!(res, Ok(()));
    }

    #[test]
    fn dedup_off_and_singletons_stay_on_the_legacy_path() {
        let ring = Keyring::new(5);
        // dedup off: byte-identical to the legacy RC fan-out.
        let mut legacy: SenderEndpoint<Blob> =
            SenderEndpoint::new(range_cfg(Variant::ReceiverCollect, 16, 8), 0, ring.clone());
        let mut off: SenderEndpoint<Blob> = SenderEndpoint::new(
            range_cfg(Variant::ReceiverCollect, 16, 8)
                .with_mode(crate::ChannelMode::ReliableCast { dedup: false }),
            0,
            ring.clone(),
        );
        let mut out_legacy = Vec::new();
        let mut out_off = Vec::new();
        legacy.send_batch(0, Position(1), blobs(1, 5), &mut out_legacy);
        off.send_batch(0, Position(1), blobs(1, 5), &mut out_off);
        assert_eq!(out_legacy, out_off, "dedup off is the legacy RC path, byte for byte");
        // dedup on, range of 1: degenerates to the legacy single-slot
        // frame on every sender (no carrier election for singletons).
        for me in 0..3 {
            let mut s: SenderEndpoint<Blob> =
                SenderEndpoint::new(dedup_cfg(16, 8), me, ring.clone());
            let mut legacy: SenderEndpoint<Blob> =
                SenderEndpoint::new(range_cfg(Variant::ReceiverCollect, 16, 8), me, ring.clone());
            let mut out_dedup = Vec::new();
            let mut out_legacy = Vec::new();
            s.send_batch(0, Position(1), vec![Blob::new(b"solo")], &mut out_dedup);
            legacy.send_batch(0, Position(1), vec![Blob::new(b"solo")], &mut out_legacy);
            assert_eq!(out_dedup, out_legacy, "sender {me}: singleton ignores dedup");
        }
    }

    #[test]
    fn dedup_vouching_skips_the_signature_charge() {
        let ring = Keyring::new(5);
        let c = dedup_cfg(16, 8).with_cost(spider_crypto::CostModel::default());
        let msgs = blobs(1, 8);
        let carrier = carrier_for(0, Position(1), c.n_senders);
        let voucher = (carrier + 1) % c.n_senders;
        let charge_sum = |out: &[Action<Blob>]| {
            out.iter()
                .filter_map(|a| match a {
                    Action::Charge(t, _) => Some(*t),
                    _ => None,
                })
                .fold(SimTime::ZERO, |acc, t| acc + t)
        };
        let mut s_carrier: SenderEndpoint<Blob> =
            SenderEndpoint::new(c.clone(), carrier, ring.clone());
        let mut s_voucher: SenderEndpoint<Blob> = SenderEndpoint::new(c.clone(), voucher, ring);
        let mut out_c = Vec::new();
        let mut out_v = Vec::new();
        s_carrier.send_batch(0, Position(1), msgs.clone(), &mut out_c);
        s_voucher.send_batch(0, Position(1), msgs, &mut out_v);
        let (cc, cv) = (charge_sum(&out_c), charge_sum(&out_v));
        // Same hashing on both; the carrier pays the RSA signature, the
        // voucher a MAC over the 52-byte statement instead.
        assert!(
            cc + c.cost.hmac(52) >= cv + c.cost.rsa_sign(),
            "vouching must not pay the RSA signature: carrier {cc:?} vs voucher {cv:?}"
        );
        assert!(cv * 10 < cc, "a voucher's CPU is a small fraction of the carrier's");
    }

    #[test]
    fn blocked_range_flushes_atomically_after_window_move() {
        let mut s: SenderEndpoint<Blob> =
            SenderEndpoint::new(range_cfg(Variant::ReceiverCollect, 4, 4), 0, Keyring::new(5));
        let mut out = Vec::new();
        // Window [1,4]: the chunk 5..=8 must queue as a unit.
        let st = s.send_batch(0, Position(5), blobs(5, 4), &mut out);
        assert_eq!(st, SendStatus::Blocked);
        assert!(!out.iter().any(|a| matches!(a, Action::ToReceiver { .. })));
        out.clear();
        let _ = s.on_receiver_message(0, ReceiverMsg::Move { sc: 0, p: Position(5) }, &mut out);
        let _ = s.on_receiver_message(1, ReceiverMsg::Move { sc: 0, p: Position(5) }, &mut out);
        let range = out
            .iter()
            .find_map(|a| match a {
                Action::ToReceiver { to: 0, msg: ChannelMsg::SendRange { first, msgs, .. } } => {
                    Some((first.0, msgs.len()))
                }
                _ => None,
            })
            .expect("blocked range transmitted");
        assert_eq!(range, (5, 4), "the whole chunk ships with its original boundary");
    }

    #[test]
    fn sc_send_many_overlap_ships_content_before_shares_and_cert_after() {
        let ring = Keyring::new(5);
        let c = range_cfg(Variant::SenderCollect, 16, 8);
        let mut s0: SenderEndpoint<Blob> = SenderEndpoint::new(c.clone(), 0, ring.clone());
        let mut s1: SenderEndpoint<Blob> = SenderEndpoint::new(c, 1, ring);
        let msgs = blobs(1, 4);
        let mut out0 = Vec::new();
        let mut out1 = Vec::new();
        s0.send_batch(0, Position(1), msgs.clone(), &mut out0);
        s1.send_batch(0, Position(1), msgs, &mut out1);
        // §A.9 overlap: content to this sender's receiver ships immediately…
        assert!(out0.iter().any(|a| matches!(
            a,
            Action::ToReceiver { to: 0, msg: ChannelMsg::RangeContent { .. } }
        )));
        // …but no certificate yet (only the own share exists).
        assert!(!out0.iter().any(|a| matches!(
            a,
            Action::ToReceiver { msg: ChannelMsg::RangeCertificate { .. }, .. }
        )));
        // One RangeShare per peer, no per-slot SigShares.
        let shares: Vec<&Action<Blob>> = out0
            .iter()
            .filter(|a| {
                matches!(a, Action::ToPeerSender { msg: ChannelMsg::RangeShare { .. }, .. })
            })
            .collect();
        assert_eq!(shares.len(), 2);
        assert!(!out0
            .iter()
            .any(|a| matches!(a, Action::ToPeerSender { msg: ChannelMsg::SigShare { .. }, .. })));
        // Deliver s1's range share to s0: certificate completes, and the
        // content is NOT re-shipped (shares-only certificate).
        let share = out1
            .iter()
            .find_map(|a| match a {
                Action::ToPeerSender { to: 0, msg } => Some(msg.clone()),
                _ => None,
            })
            .expect("share for s0");
        let mut out = Vec::new();
        let _ = s0.on_peer_message(1, share, &mut out);
        assert!(out.iter().any(|a| matches!(
            a,
            Action::ToReceiver { to: 0, msg: ChannelMsg::RangeCertificate { shares, .. } }
                if shares.len() == 2
        )));
        assert!(
            !out.iter().any(|a| matches!(
                a,
                Action::ToReceiver { msg: ChannelMsg::RangeContent { .. }, .. }
            )),
            "content already overlapped; only the compact certificate ships"
        );
    }

    #[test]
    fn sc_without_overlap_ships_content_with_certificate() {
        let ring = Keyring::new(5);
        let c = range_cfg(Variant::SenderCollect, 16, 8)
            .with_mode(crate::ChannelMode::SenderCast { overlap: false });
        let mut s0: SenderEndpoint<Blob> = SenderEndpoint::new(c.clone(), 0, ring.clone());
        let mut s1: SenderEndpoint<Blob> = SenderEndpoint::new(c, 1, ring);
        let msgs = blobs(1, 4);
        let mut out0 = Vec::new();
        let mut out1 = Vec::new();
        s0.send_batch(0, Position(1), msgs.clone(), &mut out0);
        s1.send_batch(0, Position(1), msgs, &mut out1);
        assert!(
            !out0.iter().any(|a| matches!(
                a,
                Action::ToReceiver { msg: ChannelMsg::RangeContent { .. }, .. }
            )),
            "ship-after-bundle holds content back"
        );
        let share = out1
            .iter()
            .find_map(|a| match a {
                Action::ToPeerSender { to: 0, msg } => Some(msg.clone()),
                _ => None,
            })
            .unwrap();
        let mut out = Vec::new();
        let _ = s0.on_peer_message(1, share, &mut out);
        let content_at = out.iter().position(|a| {
            matches!(a, Action::ToReceiver { msg: ChannelMsg::RangeContent { .. }, .. })
        });
        let cert_at = out.iter().position(|a| {
            matches!(a, Action::ToReceiver { msg: ChannelMsg::RangeCertificate { .. }, .. })
        });
        assert!(content_at.is_some() && content_at < cert_at, "content ships with the cert");
    }

    #[test]
    fn sc_select_reships_range_bundles() {
        let ring = Keyring::new(5);
        let c = range_cfg(Variant::SenderCollect, 16, 8);
        let mut s1: SenderEndpoint<Blob> = SenderEndpoint::new(c.clone(), 1, ring.clone());
        let mut s0: SenderEndpoint<Blob> = SenderEndpoint::new(c, 0, ring);
        let msgs = blobs(1, 3);
        let mut out0 = Vec::new();
        let mut out1 = Vec::new();
        s0.send_batch(0, Position(1), msgs.clone(), &mut out0);
        s1.send_batch(0, Position(1), msgs, &mut out1);
        let share = out0
            .iter()
            .find_map(|a| match a {
                Action::ToPeerSender { to: 1, msg } => Some(msg.clone()),
                _ => None,
            })
            .unwrap();
        let mut out = Vec::new();
        let _ = s1.on_peer_message(0, share, &mut out);
        out.clear();
        // Receiver 0 switches to s1: both content and certificate re-ship.
        let _ = s1.on_receiver_message(0, ReceiverMsg::Select { sc: 0, collector: 1 }, &mut out);
        assert!(out.iter().any(|a| matches!(
            a,
            Action::ToReceiver { to: 0, msg: ChannelMsg::RangeContent { .. } }
        )));
        assert!(out.iter().any(|a| matches!(
            a,
            Action::ToReceiver { to: 0, msg: ChannelMsg::RangeCertificate { .. } }
        )));
    }

    #[test]
    fn sc_diverged_range_boundaries_heal_via_per_slot_fallback() {
        let ring = Keyring::new(5);
        let c = range_cfg(Variant::SenderCollect, 16, 8);
        let mut s0: SenderEndpoint<Blob> = SenderEndpoint::new(c.clone(), 0, ring.clone());
        let mut s1: SenderEndpoint<Blob> = SenderEndpoint::new(c, 1, ring);
        // Same content, different boundaries: s0 sends 1..=4 as one range,
        // s1 as 1..=2 and 3..=4. Range shares never match.
        let mut out0 = Vec::new();
        let mut sink = Vec::new();
        s0.send_batch(0, Position(1), blobs(1, 4), &mut out0);
        s1.send_batch(0, Position(1), blobs(1, 2), &mut sink);
        s1.send_batch(0, Position(3), blobs(3, 2), &mut sink);
        for a in sink.drain(..) {
            if let Action::ToPeerSender { to: 0, msg } = a {
                let _ = s0.on_peer_message(1, msg, &mut Vec::new());
            }
        }
        assert!(
            !out0.iter().any(|a| matches!(
                a,
                Action::ToReceiver { msg: ChannelMsg::RangeCertificate { .. }, .. }
            )),
            "mismatched boundaries cannot certify as ranges"
        );
        // Two stalled ticks trigger the per-slot fallback on both sides.
        let mut fb0 = Vec::new();
        let mut fb1 = Vec::new();
        for _ in 0..3 {
            fb0.clear();
            fb1.clear();
            s0.tick(SimTime::ZERO, &mut fb0);
            s1.tick(SimTime::ZERO, &mut fb1);
            for a in fb1.clone() {
                if let Action::ToPeerSender { to: 0, msg } = a {
                    let _ = s0.on_peer_message(1, msg, &mut fb0);
                }
            }
            for a in fb0.clone() {
                if let Action::ToPeerSender { to: 1, msg } = a {
                    let _ = s1.on_peer_message(0, msg, &mut fb1);
                }
            }
        }
        // s0 eventually ships single-slot certificates for all four slots.
        let mut outs = Vec::new();
        s0.tick(SimTime::ZERO, &mut outs);
        let progress = outs
            .iter()
            .find_map(|a| match a {
                Action::ToReceiver { msg: ChannelMsg::Progress { positions }, .. } => {
                    Some(positions.clone())
                }
                _ => None,
            })
            .or_else(|| {
                // Progress may have been announced during the heal ticks.
                fb0.iter().find_map(|a| match a {
                    Action::ToReceiver { msg: ChannelMsg::Progress { positions }, .. } => {
                        Some(positions.clone())
                    }
                    _ => None,
                })
            });
        assert_eq!(progress, Some(vec![(0, Position(4))]), "fallback certified the whole run");
    }

    #[test]
    fn linger_buffers_contiguous_sends_and_flushes_on_deadline() {
        let c = IrmcConfig::new(Variant::ReceiverCollect, 3, 1, 3, 1, 32)
            .with_cost(spider_crypto::CostModel::zero())
            .with_range(8, SimTime::from_millis(5));
        let mut s: SenderEndpoint<Blob> = SenderEndpoint::new(c, 0, Keyring::new(5));
        let mut out = Vec::new();
        for p in 1..=3u64 {
            s.send_buffered(
                0,
                Position(p),
                Blob::new(format!("m{p}").as_bytes()),
                SimTime::ZERO,
                &mut out,
            );
        }
        assert!(out.iter().all(|a| !matches!(a, Action::ToReceiver { .. })), "lingering");
        // Before the deadline nothing flushes; after it the run ships as
        // one range.
        s.tick(SimTime::from_millis(1), &mut out);
        assert!(out.iter().all(|a| !matches!(a, Action::ToReceiver { .. })));
        s.tick(SimTime::from_millis(5), &mut out);
        let range = out
            .iter()
            .find_map(|a| match a {
                Action::ToReceiver { to: 0, msg: ChannelMsg::SendRange { first, msgs, .. } } => {
                    Some((first.0, msgs.len()))
                }
                _ => None,
            })
            .expect("deadline flushed the run");
        assert_eq!(range, (1, 3));
    }

    #[test]
    fn linger_flushes_when_full_or_non_contiguous() {
        let c = IrmcConfig::new(Variant::ReceiverCollect, 3, 1, 3, 1, 32)
            .with_cost(spider_crypto::CostModel::zero())
            .with_range(2, SimTime::from_millis(50));
        let mut s: SenderEndpoint<Blob> = SenderEndpoint::new(c, 0, Keyring::new(5));
        let mut out = Vec::new();
        s.send_buffered(0, Position(1), Blob::new(b"a"), SimTime::ZERO, &mut out);
        s.send_buffered(0, Position(2), Blob::new(b"b"), SimTime::ZERO, &mut out);
        assert!(
            out.iter()
                .any(|a| matches!(a, Action::ToReceiver { msg: ChannelMsg::SendRange { .. }, .. })),
            "full buffer flushes immediately"
        );
        out.clear();
        s.send_buffered(0, Position(5), Blob::new(b"c"), SimTime::ZERO, &mut out);
        s.send_buffered(0, Position(9), Blob::new(b"d"), SimTime::ZERO, &mut out);
        assert!(
            out.iter()
                .any(|a| matches!(a, Action::ToReceiver { msg: ChannelMsg::Send { .. }, .. })),
            "a non-contiguous position flushes the pending (single) run"
        );
    }
}
