//! The five lint families, implemented over the token stream.
//!
//! All passes work on [`crate::lexer::Lexed`] output, so comments,
//! strings, and `#[cfg(test)]` items are already out of the picture.

use crate::lexer::{lex, Kind, Lexed, Tok};

/// Lint families (plus the two annotation-hygiene lints).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Lint {
    /// Nondeterministic containers or ambient time/randomness/threads.
    Determinism,
    /// `unwrap`/`expect`/`panic!`/direct indexing in hot paths.
    Panic,
    /// Wildcard arms in matches over wire-message enums.
    WireTotality,
    /// Message emission without a CPU cost charge.
    ChargeCoverage,
    /// Unbalanced or leak-prone trace span enter/exit pairs.
    TraceHygiene,
    /// Message emission in a traced module without a causal edge record.
    EdgePairing,
    /// Malformed `analyzer:` annotation.
    BadAllow,
    /// Allow annotation that suppresses nothing.
    UnusedAllow,
}

impl Lint {
    /// Stable name used in annotations and reports.
    pub fn name(self) -> &'static str {
        match self {
            Lint::Determinism => "determinism",
            Lint::Panic => "panic",
            Lint::WireTotality => "wire-totality",
            Lint::ChargeCoverage => "charge-coverage",
            Lint::TraceHygiene => "trace-hygiene",
            Lint::EdgePairing => "edge-pairing",
            Lint::BadAllow => "bad-allow",
            Lint::UnusedAllow => "unused-allow",
        }
    }
}

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The lint family.
    pub lint: Lint,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human explanation.
    pub message: String,
}

/// A used allow annotation, surfaced in the report for auditability.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UsedAllow {
    /// Workspace-relative file path.
    pub file: String,
    /// Annotated line.
    pub line: u32,
    /// Lint suppressed.
    pub lint: String,
    /// The stated reason.
    pub reason: String,
}

/// Which lint families apply to a file.
#[derive(Debug, Clone, Copy)]
pub struct FileLints {
    /// Forbid `HashMap`/`HashSet`.
    pub hash_collections: bool,
    /// Forbid ambient time/randomness/threads (`false` for the sim crate,
    /// which owns the clock).
    pub time_sources: bool,
    /// Panic-freedom (hot-path files only).
    pub panic_freedom: bool,
    /// Send-without-charge detection.
    pub charge_coverage: bool,
    /// Span enter/exit balance checks (crates that record trace spans).
    pub trace_hygiene: bool,
    /// Send-without-causal-edge detection (modules whose sends carry
    /// request payloads the critical-path assembly must follow).
    pub edge_pairing: bool,
}

/// Enums that travel on the wire: a `match` with an arm over any of these
/// must not end in a wildcard, so new variants force explicit handling.
pub const WIRE_ENUMS: &[&str] = &[
    "ChannelMsg",
    "ReceiverMsg",
    "Msg",
    "SpiderMsg",
    "ChannelLeg",
    "CheckpointMsg",
    "ExecutePayload",
    "AdminCommand",
    "OrderItem",
];

/// Identifiers that pull in wall-clock time or ambient randomness.
const TIME_SOURCES: &[(&str, &str)] = &[
    ("SystemTime", "wall-clock time breaks same-seed reproducibility; use the sim clock"),
    ("Instant", "monotonic OS time breaks same-seed reproducibility; use the sim clock"),
    ("thread_rng", "ambient RNG breaks same-seed reproducibility; thread a seeded rng through"),
];

/// Checks one source file; returns findings and the allows that were used.
pub fn check_source(file: &str, src: &str, cfg: FileLints) -> (Vec<Violation>, Vec<UsedAllow>) {
    let lexed = lex(src);
    let mut cfg = cfg;
    // Fault plans must stay scripted and seed-deterministic: any file
    // that constructs or handles a `FaultPlan` is held to the
    // ambient-time/randomness lint even in crates otherwise exempt. The
    // sim crate owns the clock, but a wall-clock- or `thread_rng`-driven
    // fault timeline would silently break disaster replayability.
    if !cfg.time_sources
        && lexed.toks.iter().any(|t| t.kind == Kind::Ident && t.text == "FaultPlan")
    {
        cfg.time_sources = true;
    }
    let cfg = cfg;
    let mut raw: Vec<Violation> = Vec::new();

    if cfg.hash_collections || cfg.time_sources {
        determinism_pass(file, &lexed, cfg, &mut raw);
    }
    if cfg.panic_freedom {
        panic_pass(file, &lexed, &mut raw);
    }
    wire_totality_pass(file, &lexed, &mut raw);
    if cfg.charge_coverage {
        charge_pass(file, &lexed, &mut raw);
    }
    if cfg.trace_hygiene {
        trace_hygiene_pass(file, &lexed, &mut raw);
    }
    if cfg.edge_pairing {
        edge_pairing_pass(file, &lexed, &mut raw);
    }

    // Apply allow annotations: a violation on an annotated line (for the
    // matching lint) is suppressed; every allow must suppress something.
    let mut used = vec![false; lexed.allows.len()];
    let mut out: Vec<Violation> = Vec::new();
    for v in raw {
        let allowed = lexed
            .allows
            .iter()
            .enumerate()
            .find(|(_, a)| a.target_line == v.line && a.lint == v.lint.name());
        match allowed {
            Some((i, _)) => used[i] = true,
            None => out.push(v),
        }
    }
    for b in &lexed.bad_allows {
        out.push(Violation {
            lint: Lint::BadAllow,
            file: file.to_string(),
            line: b.line,
            message: format!("malformed analyzer annotation: {}", b.problem),
        });
    }
    let mut used_allows = Vec::new();
    for (i, a) in lexed.allows.iter().enumerate() {
        if used[i] {
            used_allows.push(UsedAllow {
                file: file.to_string(),
                line: a.target_line,
                lint: a.lint.clone(),
                reason: a.reason.clone(),
            });
        } else {
            out.push(Violation {
                lint: Lint::UnusedAllow,
                file: file.to_string(),
                line: a.comment_line,
                message: format!(
                    "allow({}) suppresses nothing on line {}; remove it",
                    a.lint, a.target_line
                ),
            });
        }
    }
    out.sort_by_key(|v| v.line);
    (out, used_allows)
}

fn violation(out: &mut Vec<Violation>, lint: Lint, file: &str, line: u32, msg: impl Into<String>) {
    out.push(Violation { lint, file: file.to_string(), line, message: msg.into() });
}

// ---------------------------------------------------------------------
// Family 1: determinism
// ---------------------------------------------------------------------

fn determinism_pass(file: &str, lexed: &Lexed, cfg: FileLints, out: &mut Vec<Violation>) {
    let toks = &lexed.toks;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != Kind::Ident {
            continue;
        }
        if cfg.hash_collections && (t.text == "HashMap" || t.text == "HashSet") {
            violation(
                out,
                Lint::Determinism,
                file,
                t.line,
                format!(
                    "std::{} iterates in RandomState order; use BTree{} (or a sorted drain) so \
                     same-seed runs stay byte-identical",
                    t.text,
                    &t.text[4..]
                ),
            );
        }
        if cfg.time_sources {
            if let Some((_, why)) = TIME_SOURCES.iter().find(|(name, _)| t.text == *name) {
                // `SpanKind::Instant`-style variant paths reuse the name
                // without touching the OS clock; only a path through the
                // `time` module (or a bare use) is the std type.
                let foreign_variant = i >= 2
                    && toks[i - 1].is_punct("::")
                    && !toks[i - 2].is_ident("time")
                    && !toks[i - 2].is_ident("std");
                if !foreign_variant {
                    violation(out, Lint::Determinism, file, t.line, format!("{}: {}", t.text, why));
                }
            }
            // `thread::spawn` / `std::thread::spawn`.
            if t.text == "spawn"
                && i >= 2
                && toks[i - 1].is_punct("::")
                && toks[i - 2].is_ident("thread")
            {
                violation(
                    out,
                    Lint::Determinism,
                    file,
                    t.line,
                    "thread::spawn: OS scheduling breaks same-seed reproducibility; \
                     protocol code must stay single-threaded sans-IO",
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Family 2: panic-freedom (hot paths)
// ---------------------------------------------------------------------

fn panic_pass(file: &str, lexed: &Lexed, out: &mut Vec<Violation>) {
    let toks = &lexed.toks;
    for (i, t) in toks.iter().enumerate() {
        match t.kind {
            Kind::Ident
                if (t.text == "unwrap" || t.text == "expect")
                    && i > 0
                    && toks[i - 1].is_punct(".")
                    && toks.get(i + 1).is_some_and(|n| n.is_punct("(")) =>
            {
                violation(
                    out,
                    Lint::Panic,
                    file,
                    t.line,
                    format!(
                        ".{}() can panic on hostile input; return a protocol error or guard \
                         with a debug_assert-backed invariant",
                        t.text
                    ),
                );
            }
            Kind::Ident
                if matches!(
                    t.text.as_str(),
                    "panic" | "unreachable" | "todo" | "unimplemented"
                ) && toks.get(i + 1).is_some_and(|n| n.is_punct("!")) =>
            {
                violation(
                    out,
                    Lint::Panic,
                    file,
                    t.line,
                    format!(
                        "{}! aborts the replica; hot paths must be total over the wire format",
                        t.text
                    ),
                );
            }
            Kind::Punct
                if t.text == "["
                    && i > 0
                    && (toks[i - 1].kind == Kind::Ident
                        || toks[i - 1].is_punct(")")
                        || toks[i - 1].is_punct("]"))
                    && !is_keyword(&toks[i - 1].text) =>
            {
                violation(
                    out,
                    Lint::Panic,
                    file,
                    t.line,
                    "direct indexing can panic on out-of-range input; use .get()/.get_mut() \
                     or guard with a debug_assert-backed invariant",
                );
            }
            _ => {}
        }
    }
}

/// Keywords that may directly precede `[` without forming an index
/// expression (e.g. `return [..]`, `in [..]`, `else [..]`-ish positions).
fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "return" | "in" | "if" | "else" | "match" | "break" | "mut" | "ref" | "as" | "where"
    )
}

// ---------------------------------------------------------------------
// Family 3: wire-format totality
// ---------------------------------------------------------------------

struct MatchCtx {
    body_depth: u32,
    collecting: bool,
    pattern: Vec<usize>,
    has_enum_arm: bool,
    wildcard_lines: Vec<(u32, String)>,
    enum_name: String,
}

fn wire_totality_pass(file: &str, lexed: &Lexed, out: &mut Vec<Violation>) {
    let toks = &lexed.toks;
    let mut depth: u32 = 0;
    let mut stack: Vec<MatchCtx> = Vec::new();
    // A `match` whose body brace is pending: (paren_depth, bracket_depth)
    // at the keyword, so we only accept a `{` once groups are balanced.
    let mut pending: Option<(i32, i32)> = None;
    let mut paren: i32 = 0;
    let mut bracket: i32 = 0;

    for (i, t) in toks.iter().enumerate() {
        match t.text.as_str() {
            "(" if t.kind == Kind::Punct => paren += 1,
            ")" if t.kind == Kind::Punct => paren -= 1,
            "[" if t.kind == Kind::Punct => bracket += 1,
            "]" if t.kind == Kind::Punct => bracket -= 1,
            _ => {}
        }
        if t.is_ident("match") {
            pending = Some((paren, bracket));
            continue;
        }
        if t.is_punct("{") {
            depth += 1;
            if let Some((p, b)) = pending {
                if paren == p && bracket == b {
                    stack.push(MatchCtx {
                        body_depth: depth,
                        collecting: true,
                        pattern: Vec::new(),
                        has_enum_arm: false,
                        wildcard_lines: Vec::new(),
                        enum_name: String::new(),
                    });
                    pending = None;
                }
            }
            continue;
        }
        if t.is_punct("}") {
            let closes_match = stack.last().is_some_and(|m| m.body_depth == depth);
            depth = depth.saturating_sub(1);
            if closes_match {
                if let Some(m) = stack.pop() {
                    if m.has_enum_arm {
                        for (line, pat) in m.wildcard_lines {
                            violation(
                                out,
                                Lint::WireTotality,
                                file,
                                line,
                                format!(
                                    "catch-all `{pat} =>` in a match over wire enum `{}`: a new \
                                     variant would be silently swallowed; list variants explicitly",
                                    m.enum_name
                                ),
                            );
                        }
                    }
                }
            } else if let Some(m) = stack.last_mut() {
                // An arm body's closing brace returns us to arm level:
                // the next tokens start a fresh pattern.
                if m.body_depth == depth && !m.collecting {
                    m.collecting = true;
                    m.pattern.clear();
                }
            }
            continue;
        }
        let Some(m) = stack.last_mut() else { continue };
        if m.body_depth != depth {
            continue;
        }
        if m.collecting {
            if t.is_punct("=>") && paren == 0 && bracket == 0 {
                finish_arm(toks, m);
                m.collecting = false;
                m.pattern.clear();
            } else {
                m.pattern.push(i);
            }
        } else if t.is_punct(",") && paren == 0 && bracket == 0 {
            m.collecting = true;
            m.pattern.clear();
        }
    }
}

fn finish_arm(toks: &[Tok], m: &mut MatchCtx) {
    // Enum-ness: any wire enum name followed by `::` in the pattern.
    for w in m.pattern.windows(2) {
        let (a, b) = (&toks[w[0]], &toks[w[1]]);
        if a.kind == Kind::Ident && WIRE_ENUMS.contains(&a.text.as_str()) && b.is_punct("::") {
            m.has_enum_arm = true;
            if m.enum_name.is_empty() {
                m.enum_name = a.text.clone();
            }
        }
    }
    // Wildcard-ness: the pattern is `_`, a bare binder ident, or either
    // followed by an `if` guard. (A guarded catch-all still swallows new
    // variants when the guard matches.)
    let first = m.pattern.first().map(|&i| &toks[i]);
    let is_catch_all = match first {
        Some(t) if t.kind == Kind::Ident && !is_keyword(&t.text) => {
            let rest_is_guard = m.pattern.get(1).map(|&i| toks[i].is_ident("if")).unwrap_or(true);
            // A path pattern (`Foo::Bar`) or struct pattern is not a
            // catch-all; a single lowercase-or-underscore ident is.
            rest_is_guard
                && (t.text == "_"
                    || t.text.chars().next().is_some_and(|c| c.is_lowercase() || c == '_'))
        }
        _ => false,
    };
    if is_catch_all {
        if let Some(&i) = m.pattern.first() {
            m.wildcard_lines.push((toks[i].line, toks[i].text.clone()));
        }
    }
}

// ---------------------------------------------------------------------
// Family 4: charge coverage
// ---------------------------------------------------------------------

/// Identifiers that mark a message emission when called as a method.
const SEND_METHODS: &[&str] = &["send", "broadcast", "send_many", "send_batch", "send_buffered"];
/// Identifiers that mark a message emission when `Action::`-qualified
/// (`Action::ToReceiver { .. }`, as the irmc endpoints emit). The bare
/// variant names also appear in `match` patterns on the receiving
/// side, so only the constructing path counts as a send site.
const SEND_VARIANTS: &[&str] = &["ToReceiver", "ToSender", "ToPeerSender"];

/// Scans each function body for message-send sites and for pairing
/// evidence (any identifier in `evidence`). Calls `sink(name, line)`
/// with the first send line of every sending function that lacks the
/// evidence. Shared by the charge-coverage and edge-pairing lints,
/// which differ only in what must accompany a send.
fn for_each_unpaired_send(lexed: &Lexed, evidence: &[&str], mut sink: impl FnMut(&str, u32)) {
    let toks = &lexed.toks;
    let mut i = 0;
    while i < toks.len() {
        if !toks[i].is_ident("fn") {
            i += 1;
            continue;
        }
        let name = toks.get(i + 1).map(|t| t.text.clone()).unwrap_or_default();
        // Find the body: first `{` after the signature.
        let mut j = i + 2;
        while j < toks.len() && !toks[j].is_punct("{") {
            j += 1;
        }
        let body_start = j;
        let mut depth = 0i32;
        let mut first_send: Option<u32> = None;
        let mut has_evidence = false;
        while j < toks.len() {
            let t = &toks[j];
            if t.is_punct("{") {
                depth += 1;
            } else if t.is_punct("}") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if t.kind == Kind::Ident {
                let is_method_send = SEND_METHODS.contains(&t.text.as_str())
                    && j > body_start
                    && toks[j - 1].is_punct(".")
                    && toks.get(j + 1).is_some_and(|n| n.is_punct("("));
                let is_variant_send = SEND_VARIANTS.contains(&t.text.as_str())
                    && j >= 2
                    && j > body_start
                    && toks[j - 1].is_punct("::")
                    && toks[j - 2].is_ident("Action");
                let is_output_send = t.text == "Send"
                    && j >= 2
                    && toks[j - 1].is_punct("::")
                    && toks[j - 2].is_ident("Output");
                if is_method_send || is_variant_send || is_output_send {
                    first_send.get_or_insert(t.line);
                }
                if evidence.contains(&t.text.as_str()) {
                    has_evidence = true;
                }
            }
            j += 1;
        }
        if let (Some(line), false) = (first_send, has_evidence) {
            sink(&name, line);
        }
        i = if j > i { j } else { i + 1 };
    }
}

fn charge_pass(file: &str, lexed: &Lexed, out: &mut Vec<Violation>) {
    for_each_unpaired_send(lexed, &["charge", "Charge"], |name, line| {
        violation(
            out,
            Lint::ChargeCoverage,
            file,
            line,
            format!(
                "fn `{name}` emits messages but never charges CPU cost; pair every send \
                 site with a CostModel charge (or charge at a caller and allow here)"
            ),
        );
    });
}

// ---------------------------------------------------------------------
// Family 6: edge pairing
// ---------------------------------------------------------------------

/// Identifiers that record a causal edge for a departing message.
const EDGE_METHODS: &[&str] = &["edge", "edge_for"];

/// Checks that every sending function in a traced module also records
/// a causal edge, so the critical-path assembly can follow the message
/// across nodes. Sends that carry no per-request payload (checkpoint
/// gossip, admin commands) are expected to carry a reasoned allow.
fn edge_pairing_pass(file: &str, lexed: &Lexed, out: &mut Vec<Violation>) {
    for_each_unpaired_send(lexed, EDGE_METHODS, |name, line| {
        violation(
            out,
            Lint::EdgePairing,
            file,
            line,
            format!(
                "fn `{name}` emits messages but records no causal edge; pair every send \
                 site with ctx.edge()/ctx.edge_for() so the critical-path assembly can \
                 follow the hop (or record at a caller and allow here)"
            ),
        );
    });
}

// ---------------------------------------------------------------------
// Family 5: trace hygiene
// ---------------------------------------------------------------------

/// One span call site inside a function body.
struct SpanCall {
    /// Token index of the `span_enter`/`span_exit` identifier.
    tok: usize,
    line: u32,
    /// The phase argument: the last identifier before the call's `)`.
    phase: String,
    enter: bool,
}

/// Checks span enter/exit pairing per function.
///
/// A function that both enters and exits the same phase is treated as
/// owning that span locally, so the counts must balance and no `return`
/// may sit between the first enter and the last exit (an early return
/// would leak the span and skew every phase-latency percentile built on
/// it). Functions that only enter or only exit a phase are lifecycle
/// spans closed elsewhere (e.g. the client request span opened at issue
/// time and closed by the reply quorum) and are exempt by construction.
fn trace_hygiene_pass(file: &str, lexed: &Lexed, out: &mut Vec<Violation>) {
    let toks = &lexed.toks;
    let mut i = 0;
    while i < toks.len() {
        if !toks[i].is_ident("fn") {
            i += 1;
            continue;
        }
        let name = toks.get(i + 1).map(|t| t.text.clone()).unwrap_or_default();
        let mut j = i + 2;
        while j < toks.len() && !toks[j].is_punct("{") {
            j += 1;
        }
        let mut depth = 0i32;
        let mut calls: Vec<SpanCall> = Vec::new();
        let mut returns: Vec<(usize, u32)> = Vec::new();
        while j < toks.len() {
            let t = &toks[j];
            if t.is_punct("{") {
                depth += 1;
            } else if t.is_punct("}") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if t.is_ident("return") {
                returns.push((j, t.line));
            } else if (t.is_ident("span_enter") || t.is_ident("span_exit"))
                && toks.get(j + 1).is_some_and(|n| n.is_punct("("))
            {
                // Scan to the call's closing paren; the phase is the last
                // identifier before it (a PHASE_* const, possibly
                // path-qualified).
                let mut paren = 0i32;
                let mut k = j + 1;
                let mut phase = String::new();
                while k < toks.len() {
                    if toks[k].is_punct("(") {
                        paren += 1;
                    } else if toks[k].is_punct(")") {
                        paren -= 1;
                        if paren == 0 {
                            break;
                        }
                    } else if toks[k].kind == Kind::Ident {
                        phase = toks[k].text.clone();
                    }
                    k += 1;
                }
                calls.push(SpanCall {
                    tok: j,
                    line: t.line,
                    phase,
                    enter: t.is_ident("span_enter"),
                });
            }
            j += 1;
        }
        // Phases in first-appearance order (no hash maps here either).
        let mut phases: Vec<&str> = Vec::new();
        for c in &calls {
            if !phases.contains(&c.phase.as_str()) {
                phases.push(&c.phase);
            }
        }
        for phase in phases {
            let enters: Vec<&SpanCall> =
                calls.iter().filter(|c| c.enter && c.phase == phase).collect();
            let exits: Vec<&SpanCall> =
                calls.iter().filter(|c| !c.enter && c.phase == phase).collect();
            let (Some(first_enter), Some(last_exit)) = (enters.first(), exits.last()) else {
                // Enter-only or exit-only: a lifecycle span closed in
                // another handler; nothing to check locally.
                continue;
            };
            if enters.len() != exits.len() {
                violation(
                    out,
                    Lint::TraceHygiene,
                    file,
                    first_enter.line,
                    format!(
                        "fn `{name}` enters span `{phase}` {} time(s) but exits it {} time(s); \
                         unbalanced spans corrupt the phase-latency breakdown",
                        enters.len(),
                        exits.len()
                    ),
                );
                continue;
            }
            for &(_, line) in
                returns.iter().filter(|&&(r, _)| r > first_enter.tok && r < last_exit.tok)
            {
                violation(
                    out,
                    Lint::TraceHygiene,
                    file,
                    line,
                    format!(
                        "fn `{name}` returns between span_enter({phase}) and \
                         span_exit({phase}); the early return leaks the span — exit before \
                         returning or restructure without `return`"
                    ),
                );
            }
        }
        i = if j > i { j } else { i + 1 };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: FileLints = FileLints {
        hash_collections: true,
        time_sources: true,
        panic_freedom: true,
        charge_coverage: true,
        trace_hygiene: true,
        edge_pairing: false,
    };

    /// Edge-pairing only, so its findings are not entangled with the
    /// charge-coverage lint that shares the send-site scanner.
    const EDGES: FileLints = FileLints {
        hash_collections: false,
        time_sources: false,
        panic_freedom: false,
        charge_coverage: false,
        trace_hygiene: false,
        edge_pairing: true,
    };

    fn lints_of(src: &str) -> Vec<(Lint, u32)> {
        check_source("test.rs", src, ALL).0.into_iter().map(|v| (v.lint, v.line)).collect()
    }

    // -- determinism ---------------------------------------------------

    #[test]
    fn determinism_flags_hash_collections_and_time() {
        let src = "use std::collections::HashMap;\n\
                   fn f() { let t = Instant::now(); let r = thread_rng(); }\n\
                   fn g() { std::thread::spawn(|| {}); }\n";
        let found = lints_of(src);
        assert_eq!(found.iter().filter(|(l, _)| *l == Lint::Determinism).count(), 4);
    }

    #[test]
    fn determinism_accepts_foreign_instant_variant_but_flags_std_paths() {
        let src = "fn f(k: SpanKind) -> char {\n\
                       match k { SpanKind::Instant => 'I', SpanKind::Enter => 'B' }\n\
                   }\n\
                   fn g() { let t = std::time::Instant::now(); }\n";
        let found = lints_of(src);
        assert_eq!(
            found.iter().filter(|(l, _)| *l == Lint::Determinism).count(),
            1,
            "only the std path is a time source: {found:?}"
        );
    }

    #[test]
    fn determinism_accepts_btree_and_sim_time() {
        let src = "use std::collections::{BTreeMap, BTreeSet};\n\
                   fn f(now: SimTime) -> BTreeMap<u64, u64> { BTreeMap::new() }\n";
        assert!(lints_of(src).is_empty());
    }

    #[test]
    fn fault_plan_site_is_held_to_time_sources_even_when_exempt() {
        let exempt = FileLints {
            hash_collections: true,
            time_sources: false,
            panic_freedom: false,
            charge_coverage: false,
            trace_hygiene: false,
            edge_pairing: false,
        };
        let src = "fn plan() -> FaultPlan {\n\
                       let jitter = thread_rng().gen_range(0..9);\n\
                       FaultPlan::new()\n\
                   }\n";
        let (found, _) = check_source("sim.rs", src, exempt);
        assert!(
            found.iter().any(|v| v.lint == Lint::Determinism && v.message.contains("thread_rng")),
            "a FaultPlan construction site must not draw ambient randomness: {found:?}"
        );
    }

    #[test]
    fn exempt_file_without_fault_plan_keeps_its_exemption() {
        let exempt = FileLints {
            hash_collections: true,
            time_sources: false,
            panic_freedom: false,
            charge_coverage: false,
            trace_hygiene: false,
            edge_pairing: false,
        };
        let src = "fn f() { let t = Instant::now(); }\n";
        let (found, _) = check_source("sim.rs", src, exempt);
        assert!(found.is_empty(), "the sim crate's clock exemption must survive: {found:?}");
    }

    // -- panic-freedom -------------------------------------------------

    #[test]
    fn panic_flags_unwrap_expect_macros_and_indexing() {
        let src = "fn f(v: Vec<u8>, i: usize) -> u8 {\n\
                       let a = v.get(i).unwrap();\n\
                       let b = v.first().expect(\"nonempty\");\n\
                       if i > 9 { panic!(\"bad\"); }\n\
                       v[i]\n\
                   }\n";
        let found = lints_of(src);
        assert_eq!(found.iter().filter(|(l, _)| *l == Lint::Panic).count(), 4);
    }

    #[test]
    fn panic_accepts_get_and_combinators() {
        let src = "fn f(v: &[u8], i: usize) -> u8 {\n\
                       v.get(i).copied().unwrap_or(0)\n\
                   }\n\
                   fn g(x: Option<u8>) -> u8 { x.unwrap_or_default() }\n";
        assert!(lints_of(src).is_empty());
    }

    #[test]
    fn panic_skips_array_types_attrs_and_macros() {
        let src = "#[derive(Debug)]\n\
                   struct S { a: [u8; 32] }\n\
                   fn f() -> Vec<u8> { vec![1, 2] }\n";
        assert!(lints_of(src).is_empty());
    }

    // -- wire-totality -------------------------------------------------

    #[test]
    fn wire_totality_flags_wildcard_over_wire_enum() {
        let src = "fn f(m: Msg<P>) {\n\
                       match m {\n\
                           Msg::PrePrepare { .. } => handle(),\n\
                           _ => {}\n\
                       }\n\
                   }\n";
        let found = lints_of(src);
        assert_eq!(found, vec![(Lint::WireTotality, 4)]);
    }

    #[test]
    fn wire_totality_flags_bare_binder_catch_all() {
        let src = "fn f(m: ChannelMsg<M>) -> u32 {\n\
                       match m {\n\
                           ChannelMsg::Send { .. } => 1,\n\
                           other => 0,\n\
                       }\n\
                   }\n";
        let found = lints_of(src);
        assert_eq!(found, vec![(Lint::WireTotality, 4)]);
    }

    #[test]
    fn wire_totality_ignores_non_wire_matches_and_total_matches() {
        let src = "fn f(x: Option<u32>, m: Msg<P>) -> u32 {\n\
                       let a = match x { Some(v) => v, _ => 0 };\n\
                       match m {\n\
                           Msg::PrePrepare { .. } => 1,\n\
                           Msg::Prepare { .. } => 2,\n\
                       }\n\
                   }\n";
        assert!(lints_of(src).is_empty());
    }

    #[test]
    fn wire_totality_handles_nested_matches() {
        let src = "fn f(m: SpiderMsg, x: Option<u8>) {\n\
                       match m {\n\
                           SpiderMsg::Request(r) => match x {\n\
                               Some(_) => a(),\n\
                               None => b(),\n\
                           },\n\
                           SpiderMsg::Reply(r) => c(),\n\
                           _ => {}\n\
                       }\n\
                   }\n";
        let found = lints_of(src);
        assert_eq!(found, vec![(Lint::WireTotality, 8)]);
    }

    // -- charge-coverage -----------------------------------------------

    #[test]
    fn charge_flags_send_without_charge() {
        let src = "fn gossip(&mut self, ctx: &mut Ctx) {\n\
                       ctx.send(peer, msg);\n\
                   }\n";
        let found = lints_of(src);
        assert_eq!(found, vec![(Lint::ChargeCoverage, 2)]);
    }

    #[test]
    fn charge_accepts_send_with_charge_or_forwarded_charge() {
        let src = "fn a(&mut self, ctx: &mut Ctx) {\n\
                       ctx.charge(self.cost.hmac(32));\n\
                       ctx.send(peer, msg);\n\
                   }\n\
                   fn b(&mut self, out: &mut Vec<Action<M>>) {\n\
                       out.push(Action::Charge(self.cfg.cost.rsa_sign()));\n\
                       out.push(Action::ToReceiver { to: 0, msg });\n\
                   }\n";
        assert!(lints_of(src).is_empty());
    }

    // -- edge-pairing --------------------------------------------------

    #[test]
    fn edge_pairing_flags_send_without_edge() {
        let src = "fn ship(&mut self, ctx: &mut Ctx) {\n\
                       ctx.charge(self.cost.hmac(32));\n\
                       ctx.send(peer, msg);\n\
                   }\n";
        let (found, _) = check_source("t.rs", src, EDGES);
        assert_eq!(
            found.iter().map(|v| (v.lint, v.line)).collect::<Vec<_>>(),
            vec![(Lint::EdgePairing, 3)]
        );
    }

    #[test]
    fn edge_pairing_accepts_edge_and_edge_for() {
        let src = "fn a(&mut self, ctx: &mut Ctx) {\n\
                       ctx.edge_for(node, &msg);\n\
                       ctx.send(node, msg);\n\
                   }\n\
                   fn b(&mut self, ctx: &mut Ctx) {\n\
                       ctx.edge(node, \"reply\", rid);\n\
                       ctx.send(node, msg);\n\
                   }\n";
        let (found, _) = check_source("t.rs", src, EDGES);
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn edge_pairing_allow_suppresses_payload_free_sends() {
        let src = "fn gossip(&mut self, ctx: &mut Ctx) {\n\
                       // analyzer: allow(edge-pairing, \"checkpoint gossip carries no request\")\n\
                       ctx.send(peer, msg);\n\
                   }\n";
        let (found, used) = check_source("t.rs", src, EDGES);
        assert!(found.is_empty(), "{found:?}");
        assert_eq!(used.len(), 1);
    }

    #[test]
    fn edge_pairing_and_charge_coverage_report_independently() {
        let both = FileLints { charge_coverage: true, ..EDGES };
        let src = "fn ship(&mut self, ctx: &mut Ctx) {\n\
                       ctx.send(peer, msg);\n\
                   }\n";
        let (found, _) = check_source("t.rs", src, both);
        let lints: Vec<Lint> = found.iter().map(|v| v.lint).collect();
        assert!(lints.contains(&Lint::ChargeCoverage) && lints.contains(&Lint::EdgePairing));
    }

    // -- trace-hygiene -------------------------------------------------

    #[test]
    fn trace_hygiene_accepts_balanced_span_pair() {
        let src = "fn f(&mut self, ctx: &mut Ctx) {\n\
                       ctx.span_enter(rid, PHASE_EXEC);\n\
                       self.run();\n\
                       ctx.span_exit(rid, PHASE_EXEC);\n\
                   }\n";
        assert!(lints_of(src).is_empty());
    }

    #[test]
    fn trace_hygiene_exempts_lifecycle_spans_split_across_fns() {
        // Enter-only / exit-only functions close the span elsewhere (the
        // client request span spans issue() → on_reply()).
        let src = "fn issue(&mut self, ctx: &mut Ctx) {\n\
                       ctx.span_enter(rid, PHASE_REQUEST);\n\
                       if done { return; }\n\
                   }\n\
                   fn on_reply(&mut self, ctx: &mut Ctx) {\n\
                       ctx.span_exit(rid, PHASE_REQUEST);\n\
                   }\n";
        assert!(lints_of(src).is_empty());
    }

    #[test]
    fn trace_hygiene_flags_unbalanced_counts() {
        let src = "fn f(&mut self, ctx: &mut Ctx) {\n\
                       ctx.span_enter(rid, PHASE_EXEC);\n\
                       ctx.span_enter(rid2, PHASE_EXEC);\n\
                       ctx.span_exit(rid, PHASE_EXEC);\n\
                   }\n";
        let found = lints_of(src);
        assert_eq!(found, vec![(Lint::TraceHygiene, 2)]);
    }

    #[test]
    fn trace_hygiene_flags_return_between_enter_and_exit() {
        let src = "fn f(&mut self, ctx: &mut Ctx) -> u32 {\n\
                       ctx.span_enter(rid, PHASE_EXEC);\n\
                       if bad { return 0; }\n\
                       ctx.span_exit(rid, PHASE_EXEC);\n\
                       1\n\
                   }\n";
        let found = lints_of(src);
        assert_eq!(found, vec![(Lint::TraceHygiene, 3)]);
    }

    #[test]
    fn trace_hygiene_tracks_phases_independently() {
        // A balanced exec pair next to a lifecycle enter of another
        // phase: only phases with both an enter and an exit are audited.
        let src = "fn f(&mut self, ctx: &mut Ctx) {\n\
                       ctx.span_enter(rid, PHASE_REQUEST);\n\
                       ctx.span_enter(rid, PHASE_EXEC);\n\
                       ctx.span_exit(rid, PHASE_EXEC);\n\
                   }\n";
        assert!(lints_of(src).is_empty());
    }

    #[test]
    fn trace_hygiene_allow_suppresses() {
        let src = "fn f(&mut self, ctx: &mut Ctx) {\n\
                       ctx.span_enter(rid, PHASE_EXEC); \
                       // analyzer: allow(trace-hygiene, \"exit charged via drop guard\")\n\
                       ctx.span_enter(rid2, PHASE_EXEC);\n\
                       ctx.span_exit(rid, PHASE_EXEC);\n\
                   }\n";
        let (found, used) = check_source("t.rs", src, ALL);
        assert!(found.is_empty(), "{found:?}");
        assert_eq!(used.len(), 1);
    }

    // -- allow handling ------------------------------------------------

    #[test]
    fn allow_suppresses_matching_lint_on_line() {
        let src = "fn f(v: &[u8]) -> u8 {\n\
                       v[0] // analyzer: allow(panic, \"caller checks nonempty\")\n\
                   }\n";
        let (found, used) = check_source("t.rs", src, ALL);
        assert!(found.is_empty(), "{found:?}");
        assert_eq!(used.len(), 1);
        assert_eq!(used[0].reason, "caller checks nonempty");
    }

    #[test]
    fn allow_for_wrong_lint_does_not_suppress() {
        let src = "fn f(v: &[u8]) -> u8 {\n\
                       v[0] // analyzer: allow(determinism, \"wrong family\")\n\
                   }\n";
        let (found, _) = check_source("t.rs", src, ALL);
        // The panic violation survives AND the allow is unused.
        assert!(found.iter().any(|v| v.lint == Lint::Panic));
        assert!(found.iter().any(|v| v.lint == Lint::UnusedAllow));
    }

    #[test]
    fn unused_allow_is_reported() {
        let src = "// analyzer: allow(panic, \"stale\")\nfn f() {}\n";
        let (found, _) = check_source("t.rs", src, ALL);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].lint, Lint::UnusedAllow);
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "fn live() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn t(v: Vec<u8>) { v.clone().pop().unwrap(); let m = HashMap::new(); }\n\
                   }\n";
        assert!(lints_of(src).is_empty());
    }
}
