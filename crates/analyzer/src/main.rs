//! CLI for the workspace lints: `cargo run -p spider-analyzer -- check`.

use std::path::PathBuf;
use std::process::ExitCode;

use spider_analyzer::analyze_workspace;

fn usage() -> ! {
    eprintln!(
        "usage: spider-analyzer check [--json PATH] [--root PATH]\n\
         \n\
         Lints the protocol crates for determinism, panic-freedom,\n\
         wire-format totality, cost-charge coverage, and trace-span\n\
         hygiene. Exits 1 when any unallowed violation is found. See\n\
         README \"Sans-IO invariants\"."
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("check") => {}
        _ => usage(),
    }
    let mut json_path: Option<PathBuf> = None;
    let mut root: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json_path = Some(args.next().unwrap_or_else(|| usage()).into()),
            "--root" => root = Some(args.next().unwrap_or_else(|| usage()).into()),
            _ => usage(),
        }
    }
    // Default root: the workspace containing this crate (two levels above
    // crates/analyzer), falling back to the current directory.
    let root = root.unwrap_or_else(|| {
        let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        manifest
            .parent()
            .and_then(|p| p.parent())
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("."))
    });

    let report = match analyze_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("spider-analyzer: failed to read workspace at {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if let Some(path) = json_path {
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("spider-analyzer: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!("report written to {}", path.display());
    }

    for v in &report.violations {
        println!("{}:{}: [{}] {}", v.file, v.line, v.lint.name(), v.message);
    }
    println!(
        "spider-analyzer: {} file(s) scanned, {} violation(s), {} allow(s) in use",
        report.files_scanned,
        report.violations.len(),
        report.allows.len()
    );
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
