//! A lightweight Rust lexer: just enough to lint protocol sources.
//!
//! Produces identifier/punctuation/literal tokens with line numbers,
//! skips comments and string/char literals (so lint patterns never match
//! inside them), extracts `// analyzer: allow(<lint>, <reason>)`
//! annotations, and masks out `#[cfg(test)]` items so test-only code is
//! exempt from the protocol lints.

/// Kind of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Identifier or keyword (including `_`).
    Ident,
    /// Punctuation; multi-character operators `::`, `=>`, `->` are merged.
    Punct,
    /// Any literal (string, char, number). Content is not preserved.
    Literal,
}

/// One token of a source file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// 1-based source line.
    pub line: u32,
    /// Token kind.
    pub kind: Kind,
    /// Token text (`"<lit>"` for literals).
    pub text: String,
}

impl Tok {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == Kind::Ident && self.text == s
    }

    /// Whether this token is the punctuation `s`.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == Kind::Punct && self.text == s
    }
}

/// An `// analyzer: allow(lint, reason)` annotation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// Line the annotation suppresses (the comment's own line when it
    /// shares it with code, otherwise the line directly below).
    pub target_line: u32,
    /// Line the comment itself is on.
    pub comment_line: u32,
    /// Lint name, e.g. `panic`.
    pub lint: String,
    /// Mandatory human reason.
    pub reason: String,
}

/// A malformed `analyzer:` comment (unparsable, or missing its reason).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BadAllow {
    /// Line of the malformed comment.
    pub line: u32,
    /// What is wrong with it.
    pub problem: String,
}

/// Result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Tokens outside comments/literals, with `#[cfg(test)]` items removed.
    pub toks: Vec<Tok>,
    /// Well-formed allow annotations (test-code annotations are dropped).
    pub allows: Vec<Allow>,
    /// Malformed allow annotations.
    pub bad_allows: Vec<BadAllow>,
}

/// Lexes `src`, extracting tokens and analyzer annotations.
pub fn lex(src: &str) -> Lexed {
    let mut lx = Lexer { chars: src.chars().collect(), pos: 0, line: 1, out: Lexed::default() };
    lx.run();
    chain_stacked_allows(&mut lx.out);
    mask_cfg_test(&mut lx.out);
    lx.out
}

/// Retargets stacked standalone allow comments: a line of allows for
/// several lints above one offending line must all land on that line,
/// not on each other. An allow whose target is another allow's
/// comment-only line is forwarded to that allow's own target (targets
/// strictly increase, so the chain terminates).
fn chain_stacked_allows(out: &mut Lexed) {
    let standalone: Vec<(u32, u32)> = out
        .allows
        .iter()
        .filter(|a| a.target_line != a.comment_line)
        .map(|a| (a.comment_line, a.target_line))
        .collect();
    for a in out.allows.iter_mut() {
        while let Some(&(_, next)) =
            standalone.iter().find(|&&(c, t)| c == a.target_line && t > a.target_line)
        {
            a.target_line = next;
        }
    }
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Lexed,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, kind: Kind, text: impl Into<String>) {
        self.out.toks.push(Tok { line: self.line, kind, text: text.into() });
    }

    fn run(&mut self) {
        while let Some(c) = self.peek(0) {
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string_literal(),
                '\'' => self.char_or_lifetime(),
                c if c.is_ascii_digit() => self.number(),
                c if c == '_' || c.is_alphabetic() => self.ident(),
                _ => self.punct(),
            }
        }
    }

    fn line_comment(&mut self) {
        let line = self.line;
        // Did any token land on this line before the comment?
        let code_before = self.out.toks.last().is_some_and(|t| t.line == line);
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        if text.contains("analyzer:") {
            let target = if code_before { line } else { line + 1 };
            match parse_allow(&text) {
                Ok((lint, reason)) => self.out.allows.push(Allow {
                    target_line: target,
                    comment_line: line,
                    lint,
                    reason,
                }),
                Err(problem) => self.out.bad_allows.push(BadAllow { line, problem }),
            }
        }
    }

    fn block_comment(&mut self) {
        self.bump();
        self.bump();
        let mut depth = 1u32;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
    }

    fn string_literal(&mut self) {
        let line = self.line;
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
        self.out.toks.push(Tok { line, kind: Kind::Literal, text: "<lit>".into() });
    }

    fn raw_string(&mut self) {
        // At this point the `r`/`b` prefix has been consumed; `pos` is at
        // `#`* followed by `"`.
        let line = self.line;
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        'outer: while let Some(c) = self.bump() {
            if c == '"' {
                for i in 0..hashes {
                    if self.peek(i) != Some('#') {
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
        self.out.toks.push(Tok { line, kind: Kind::Literal, text: "<lit>".into() });
    }

    fn char_or_lifetime(&mut self) {
        // Lifetime: `'ident` not followed by a closing quote.
        let next = self.peek(1);
        let is_lifetime = match next {
            Some(c) if c == '_' || c.is_alphabetic() => {
                // Scan the identifier; a `'` right after makes it a char
                // literal like 'a'.
                let mut i = 1;
                while self.peek(i).is_some_and(|c| c == '_' || c.is_alphanumeric()) {
                    i += 1;
                }
                self.peek(i) != Some('\'')
            }
            _ => false,
        };
        if is_lifetime {
            self.bump(); // '
            while self.peek(0).is_some_and(|c| c == '_' || c.is_alphanumeric()) {
                self.bump();
            }
            return;
        }
        let line = self.line;
        self.bump(); // opening quote
        if self.bump() == Some('\\') {
            self.bump();
        }
        // Consume up to the closing quote (handles '\u{...}').
        while let Some(c) = self.peek(0) {
            self.bump();
            if c == '\'' {
                break;
            }
        }
        self.out.toks.push(Tok { line, kind: Kind::Literal, text: "<lit>".into() });
    }

    fn number(&mut self) {
        let line = self.line;
        while self.peek(0).is_some_and(|c| c.is_alphanumeric() || c == '_') {
            self.bump();
        }
        // Fractional part: `1.5` but not the range `1..5` or method `1.max(2)`.
        if self.peek(0) == Some('.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
            while self.peek(0).is_some_and(|c| c.is_alphanumeric() || c == '_') {
                self.bump();
            }
        }
        self.out.toks.push(Tok { line, kind: Kind::Literal, text: "<lit>".into() });
    }

    fn ident(&mut self) {
        let mut text = String::new();
        while self.peek(0).is_some_and(|c| c == '_' || c.is_alphanumeric()) {
            text.push(self.bump().unwrap_or_default());
        }
        // Raw / byte string prefixes.
        if matches!(text.as_str(), "r" | "br" | "rb") {
            match self.peek(0) {
                Some('"') | Some('#') => return self.raw_string(),
                _ => {}
            }
        }
        if text == "b" {
            if self.peek(0) == Some('"') {
                return self.string_literal();
            }
            if self.peek(0) == Some('\'') {
                return self.char_or_lifetime();
            }
        }
        self.push(Kind::Ident, text);
    }

    fn punct(&mut self) {
        let c = self.bump().unwrap_or_default();
        let merged = match (c, self.peek(0)) {
            (':', Some(':')) => Some("::"),
            ('=', Some('>')) => Some("=>"),
            ('-', Some('>')) => Some("->"),
            _ => None,
        };
        match merged {
            Some(op) => {
                self.bump();
                self.push(Kind::Punct, op);
            }
            None => self.push(Kind::Punct, c.to_string()),
        }
    }
}

/// Parses `analyzer: allow(lint, reason)` out of a comment's text.
fn parse_allow(comment: &str) -> Result<(String, String), String> {
    let after = match comment.split_once("analyzer:") {
        Some((_, rest)) => rest.trim(),
        None => return Err("missing `analyzer:` prefix".into()),
    };
    let body = after
        .strip_prefix("allow(")
        .and_then(|r| r.rfind(')').map(|end| &r[..end]))
        .ok_or_else(|| "expected `allow(<lint>, <reason>)`".to_string())?;
    let (lint, reason) = body.split_once(',').ok_or_else(|| {
        "allow annotation must carry a reason: `allow(<lint>, <reason>)`".to_string()
    })?;
    let lint = lint.trim().to_string();
    let reason = reason.trim().trim_matches('"').trim().to_string();
    if lint.is_empty() {
        return Err("empty lint name".into());
    }
    if reason.is_empty() {
        return Err("allow annotation must carry a non-empty reason".into());
    }
    Ok((lint, reason))
}

/// Removes tokens belonging to `#[cfg(test)]` items (and allow
/// annotations inside them): test code is exempt from protocol lints.
fn mask_cfg_test(out: &mut Lexed) {
    let toks = std::mem::take(&mut out.toks);
    let mut kept: Vec<Tok> = Vec::with_capacity(toks.len());
    let mut masked_ranges: Vec<(u32, u32)> = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if is_cfg_test_attr(&toks, i) {
            let start_line = toks[i].line;
            // Skip the attribute itself: `#` `[` ... matching `]`.
            let mut j = i + 2;
            let mut depth = 1;
            while j < toks.len() && depth > 0 {
                match toks[j].text.as_str() {
                    "[" => depth += 1,
                    "]" => depth -= 1,
                    _ => {}
                }
                j += 1;
            }
            // Skip any further attributes on the same item.
            while j < toks.len()
                && toks[j].is_punct("#")
                && toks.get(j + 1).is_some_and(|t| t.is_punct("["))
            {
                let mut depth = 1;
                let mut k = j + 2;
                while k < toks.len() && depth > 0 {
                    match toks[k].text.as_str() {
                        "[" => depth += 1,
                        "]" => depth -= 1,
                        _ => {}
                    }
                    k += 1;
                }
                j = k;
            }
            // Skip the item: up to `;` before any brace, else the matched
            // brace block.
            let mut depth = 0usize;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    ";" if depth == 0 => {
                        j += 1;
                        break;
                    }
                    "{" => depth += 1,
                    "}" => {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            let end_line = toks.get(j.saturating_sub(1)).map_or(start_line, |t| t.line);
            masked_ranges.push((start_line, end_line));
            i = j;
        } else {
            kept.push(toks[i].clone());
            i += 1;
        }
    }
    out.toks = kept;
    out.allows.retain(|a| {
        !masked_ranges.iter().any(|&(s, e)| a.comment_line >= s && a.comment_line <= e)
    });
    out.bad_allows.retain(|b| !masked_ranges.iter().any(|&(s, e)| b.line >= s && b.line <= e));
}

/// Whether tokens starting at `i` spell `#[cfg(test)]` (possibly with
/// whitespace/newlines in between, which lexing already removed).
fn is_cfg_test_attr(toks: &[Tok], i: usize) -> bool {
    let pat = ["#", "[", "cfg", "(", "test", ")", "]"];
    toks.len() >= i + pat.len()
        && pat.iter().enumerate().all(|(k, p)| {
            let t = &toks[i + k];
            t.text == *p
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src).toks.into_iter().filter(|t| t.kind == Kind::Ident).map(|t| t.text).collect()
    }

    #[test]
    fn strings_and_comments_do_not_tokenize() {
        let src = r##"
            // HashMap in a comment
            /* HashMap in /* nested */ block */
            let s = "HashMap::new()";
            let r = r#"HashSet"#;
            let c = 'H';
            let real = HashMap::new();
        "##;
        let ids = idents(src);
        assert_eq!(ids.iter().filter(|s| *s == "HashMap").count(), 1);
        assert!(!ids.contains(&"HashSet".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x } let c = 'x';";
        let lexed = lex(src);
        assert!(lexed.toks.iter().any(|t| t.is_ident("str")));
        // The char literal is one Literal token, the lifetimes none.
        let lits = lexed.toks.iter().filter(|t| t.kind == Kind::Literal).count();
        assert_eq!(lits, 1);
    }

    #[test]
    fn multi_char_operators_merge() {
        let lexed = lex("match x { A::B => c, _ => d } -> >= ..=");
        assert!(lexed.toks.iter().any(|t| t.is_punct("::")));
        assert!(lexed.toks.iter().any(|t| t.is_punct("=>")));
        assert!(lexed.toks.iter().any(|t| t.is_punct("->")));
        // `>=` stays two tokens; no false `=>`.
        assert_eq!(lexed.toks.iter().filter(|t| t.is_punct("=>")).count(), 2);
    }

    #[test]
    fn allow_annotation_parses_with_reason() {
        let src = "let x = 1; // analyzer: allow(panic, \"index checked above\")\nlet y = 2;";
        let lexed = lex(src);
        assert_eq!(lexed.allows.len(), 1);
        let a = &lexed.allows[0];
        assert_eq!(a.lint, "panic");
        assert_eq!(a.reason, "index checked above");
        assert_eq!(a.target_line, 1, "same-line comment targets its own line");
    }

    #[test]
    fn standalone_allow_targets_next_line() {
        let src = "// analyzer: allow(determinism, order never observed)\nlet m = HashMap::new();";
        let lexed = lex(src);
        assert_eq!(lexed.allows[0].target_line, 2);
    }

    #[test]
    fn stacked_allows_all_target_the_code_line_below() {
        let src = "// analyzer: allow(charge-coverage, \"charged at caller\")\n\
                   // analyzer: allow(edge-pairing, \"no request payload\")\n\
                   ctx.send(peer, msg);\n";
        let lexed = lex(src);
        assert_eq!(lexed.allows.len(), 2);
        assert_eq!(lexed.allows[0].target_line, 3, "chained through the second comment");
        assert_eq!(lexed.allows[1].target_line, 3);
    }

    #[test]
    fn allow_without_reason_is_malformed() {
        let src = "// analyzer: allow(panic)\nlet x = 1;";
        let lexed = lex(src);
        assert!(lexed.allows.is_empty());
        assert_eq!(lexed.bad_allows.len(), 1);
    }

    #[test]
    fn cfg_test_items_are_masked() {
        let src = "
            fn live() { a.unwrap(); }
            #[cfg(test)]
            mod tests {
                fn t() { b.unwrap(); let m = HashMap::new(); }
            }
            fn also_live() {}
        ";
        let lexed = lex(src);
        let ids: Vec<_> =
            lexed.toks.iter().filter(|t| t.kind == Kind::Ident).map(|t| t.text.clone()).collect();
        assert!(ids.contains(&"live".to_string()));
        assert!(ids.contains(&"also_live".to_string()));
        assert!(!ids.contains(&"HashMap".to_string()));
        assert!(!ids.contains(&"tests".to_string()));
    }
}
