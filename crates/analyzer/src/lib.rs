//! `spider-analyzer`: workspace determinism & protocol-hygiene lints.
//!
//! The whole reproduction rests on two properties nothing in the compiler
//! enforces: **same seed → same trace** (CI perf gates and byte-identical
//! regression tests assume it) and **handlers total over the wire format**
//! (the paper's §A.9 "never deliver early" argument assumes no message is
//! silently swallowed). This crate mechanically enforces both, plus
//! panic-freedom on hot paths and honesty of the simulator's cost model:
//!
//! 1. **determinism** — no `HashMap`/`HashSet` in protocol crates (their
//!    iteration order is arbitrary under the real std), and no ambient
//!    time/randomness/threads outside the sim's clock.
//! 2. **panic** — no `unwrap`/`expect`/`panic!`-family macros/direct
//!    indexing in sender/receiver/replica hot paths.
//! 3. **wire-totality** — no wildcard `_ =>` arm in a `match` over a
//!    wire-message enum.
//! 4. **charge-coverage** — every function that emits messages also
//!    charges CPU cost, keeping the busy-server perf model honest.
//! 5. **trace-hygiene** — span enter/exit pairs recorded by the
//!    observability layer stay balanced per function with no early
//!    `return` leaking an open span (cross-function lifecycle spans,
//!    which only enter or only exit, are exempt by construction).
//! 6. **edge-pairing** — in the fully traced core stack, every function
//!    that emits messages also records a causal edge
//!    (`ctx.edge`/`ctx.edge_for`), so the critical-path assembly can
//!    follow each hop; payload-free sends carry a reasoned allow.
//!
//! Escape hatch: `// analyzer: allow(<lint>, <reason>)` on (or directly
//! above) the offending line. The reason is mandatory, and an allow that
//! suppresses nothing is itself a violation, so annotations cannot rot.
//!
//! No external dependencies: a small hand-rolled lexer (see [`lexer`])
//! tokenizes the sources, so the analyzer runs in offline environments and
//! never competes with the protocol crates for dependency versions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lexer;
pub mod lints;

pub use lints::{check_source, FileLints, Lint, UsedAllow, Violation};

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Hot-path files subject to the panic-freedom lint: the code that handles
/// input from other (possibly faulty) nodes at line rate.
const HOT_PATHS: &[&str] = &[
    "crates/irmc/src/sender.rs",
    "crates/irmc/src/receiver.rs",
    "crates/consensus/src/replica.rs",
    "crates/core/src/agreement.rs",
    "crates/core/src/execution.rs",
];

/// Per-crate lint configuration for `crates/<name>/src/**.rs`.
///
/// `sim` owns the clock, so it is exempt from the ambient-time checks (it
/// still must not use hash collections — the event loop's iteration order
/// feeds straight into the trace). Crates that run inside the simulator
/// (`irmc`, `consensus`, `core`) additionally get charge-coverage.
const CRATE_CFG: &[(&str, bool, bool, bool, bool)] = &[
    // (crate, time_sources, charge_coverage, trace_hygiene, edge_pairing)
    ("types", true, false, false, false),
    ("crypto", true, false, false, false),
    ("sim", false, false, true, false),
    ("obs", true, false, true, false),
    ("irmc", true, true, true, false),
    ("consensus", true, true, true, false),
    // Core is the fully traced stack: every send that carries request
    // payload must also record a causal edge, or the critical-path
    // assembly silently loses the hop.
    ("core", true, true, true, true),
];

/// Files outside the protocol crates that feed CI-gated numbers: the
/// disaster experiment family and the availability metrics behind its
/// gates. Scanned with the full determinism lints (hash collections and
/// ambient time/randomness) so scripted fault plans and the metrics
/// derived from them stay replayable.
const EXTRA_FILES: &[&str] =
    &["crates/harness/src/stats.rs", "crates/harness/src/experiments/disaster.rs"];

/// Full analysis result for a workspace.
#[derive(Debug, Default)]
pub struct Report {
    /// Unallowed findings, sorted by file then line.
    pub violations: Vec<Violation>,
    /// Allow annotations that suppressed something, for auditability.
    pub allows: Vec<UsedAllow>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// True when the workspace has no unallowed violations.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Serializes the report as JSON (hand-rolled; no serde in this crate).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"violations\": [");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {{\"lint\": {}, \"file\": {}, \"line\": {}, \"message\": {}}}",
                json_str(v.lint.name()),
                json_str(&v.file),
                v.line,
                json_str(&v.message)
            ));
        }
        if !self.violations.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("],\n  \"allows\": [");
        for (i, a) in self.allows.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {{\"lint\": {}, \"file\": {}, \"line\": {}, \"reason\": {}}}",
                json_str(&a.lint),
                json_str(&a.file),
                a.line,
                json_str(&a.reason)
            ));
        }
        if !self.allows.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str(&format!(
            "],\n  \"files_scanned\": {},\n  \"clean\": {}\n}}\n",
            self.files_scanned,
            self.clean()
        ));
        s
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Analyzes every checked crate under `root` (the workspace root).
pub fn analyze_workspace(root: &Path) -> io::Result<Report> {
    let mut report = Report::default();
    for &(krate, time_sources, charge_coverage, trace_hygiene, edge_pairing) in CRATE_CFG {
        let src_dir = root.join("crates").join(krate).join("src");
        let mut files = Vec::new();
        collect_rs(&src_dir, &mut files)?;
        files.sort();
        for path in files {
            let rel = path.strip_prefix(root).unwrap_or(&path).to_string_lossy().replace('\\', "/");
            let cfg = FileLints {
                hash_collections: true,
                time_sources,
                panic_freedom: HOT_PATHS.contains(&rel.as_str()),
                charge_coverage,
                trace_hygiene,
                edge_pairing,
            };
            let src = fs::read_to_string(&path)?;
            let (violations, allows) = check_source(&rel, &src, cfg);
            report.violations.extend(violations);
            report.allows.extend(allows);
            report.files_scanned += 1;
        }
    }
    for rel in EXTRA_FILES {
        let path = root.join(rel);
        let cfg = FileLints {
            hash_collections: true,
            time_sources: true,
            panic_freedom: false,
            charge_coverage: false,
            trace_hygiene: false,
            edge_pairing: false,
        };
        let src = fs::read_to_string(&path)?;
        let (violations, allows) = check_source(rel, &src, cfg);
        report.violations.extend(violations);
        report.allows.extend(allows);
        report.files_scanned += 1;
    }
    report.violations.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    report.allows.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(report)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.exists() {
        return Ok(());
    }
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_report_escapes_and_round_trips_shape() {
        let report = Report {
            violations: vec![Violation {
                lint: Lint::Panic,
                file: "a.rs".into(),
                line: 3,
                message: "say \"no\"\n".into(),
            }],
            allows: vec![UsedAllow {
                file: "b.rs".into(),
                line: 9,
                lint: "determinism".into(),
                reason: "topology map, never iterated on the wire path".into(),
            }],
            files_scanned: 2,
        };
        let json = report.to_json();
        assert!(json.contains("\"say \\\"no\\\"\\n\""));
        assert!(json.contains("\"clean\": false"));
        assert!(json.contains("\"files_scanned\": 2"));
    }

    #[test]
    fn empty_report_is_clean() {
        let report = Report::default();
        assert!(report.clean());
        assert!(report.to_json().contains("\"clean\": true"));
    }
}
